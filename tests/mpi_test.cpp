// Tests for the minimpi message-passing runtime: point-to-point semantics,
// collectives, barriers, and failure propagation — the properties the
// paper's Algorithm 1 / Algorithm 2 communication relies on.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mpi/minimpi.h"

namespace ngsx::mpi {
namespace {

TEST(MiniMpi, RankAndSize) {
  std::vector<int> seen(4, -1);
  run(4, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 4);
    seen[static_cast<size_t>(comm.rank())] = comm.rank();
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(seen[static_cast<size_t>(r)], r);
  }
}

TEST(MiniMpi, SingleRankWorks) {
  run(1, [](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    comm.barrier();
    EXPECT_EQ(comm.allreduce_sum(5), 5);
  });
}

TEST(MiniMpi, PointToPoint) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, "hello");
    } else {
      EXPECT_EQ(comm.recv(0, 7), "hello");
    }
  });
}

TEST(MiniMpi, FifoPerSourceAndTag) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 100; ++i) {
        comm.send_value(1, 3, i);
      }
    } else {
      for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(comm.recv_value<int>(0, 3), i);
      }
    }
  });
}

TEST(MiniMpi, TagsAreIndependentChannels) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 111);
      comm.send_value(1, 2, 222);
    } else {
      // Receive in the opposite order of sending.
      EXPECT_EQ(comm.recv_value<int>(0, 2), 222);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 111);
    }
  });
}

TEST(MiniMpi, SourcesAreIndependentChannels) {
  run(3, [](Comm& comm) {
    if (comm.rank() != 2) {
      comm.send_value(2, 0, comm.rank());
    } else {
      EXPECT_EQ(comm.recv_value<int>(1, 0), 1);
      EXPECT_EQ(comm.recv_value<int>(0, 0), 0);
    }
  });
}

TEST(MiniMpi, SendDoesNotBlock) {
  // Buffered sends: rank 0 can send many messages before any receive.
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 1000; ++i) {
        comm.send_value(1, 0, i);
      }
      comm.send_value(1, 1, -1);  // completion marker
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 1), -1);
      for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(comm.recv_value<int>(0, 0), i);
      }
    }
  });
}

TEST(MiniMpi, SendVectorRoundTrip) {
  run(2, [](Comm& comm) {
    std::vector<double> payload = {1.5, -2.5, 3.75};
    if (comm.rank() == 0) {
      comm.send_vector(1, 0, payload);
    } else {
      EXPECT_EQ(comm.recv_vector<double>(0, 0), payload);
    }
  });
}

TEST(MiniMpi, EmptyMessage) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, "");
    } else {
      EXPECT_EQ(comm.recv(0, 0), "");
    }
  });
}

TEST(MiniMpi, Probe) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_FALSE(comm.probe(1, 9));
      comm.send_value(1, 9, 1);
      comm.barrier();
    } else {
      comm.barrier();
      EXPECT_TRUE(comm.probe(0, 9));
      comm.recv_value<int>(0, 9);
      EXPECT_FALSE(comm.probe(0, 9));
    }
  });
}

TEST(MiniMpi, BarrierSynchronizes) {
  // Phase counter: all ranks must observe every rank in phase 1 before any
  // rank enters phase 2.
  std::atomic<int> in_phase1{0};
  std::atomic<bool> violated{false};
  run(8, [&](Comm& comm) {
    in_phase1.fetch_add(1);
    comm.barrier();
    if (in_phase1.load() != 8) {
      violated.store(true);
    }
  });
  EXPECT_FALSE(violated.load());
}

TEST(MiniMpi, RepeatedBarriers) {
  std::atomic<int> counter{0};
  run(4, [&](Comm& comm) {
    for (int round = 0; round < 50; ++round) {
      if (comm.rank() == 0) {
        counter.fetch_add(1);
      }
      comm.barrier();
      EXPECT_EQ(counter.load(), round + 1);
      comm.barrier();
    }
  });
}

TEST(MiniMpi, Bcast) {
  run(5, [](Comm& comm) {
    std::string payload = comm.rank() == 2 ? "the-data" : "";
    EXPECT_EQ(comm.bcast(2, payload), "the-data");
  });
}

TEST(MiniMpi, BcastValue) {
  run(4, [](Comm& comm) {
    double v = comm.rank() == 0 ? 6.25 : 0.0;
    EXPECT_DOUBLE_EQ(comm.bcast_value(0, v), 6.25);
  });
}

TEST(MiniMpi, GatherCollectsInRankOrder) {
  run(4, [](Comm& comm) {
    std::string local(1, static_cast<char>('a' + comm.rank()));
    auto parts = comm.gather(0, local);
    if (comm.rank() == 0) {
      ASSERT_EQ(parts.size(), 4u);
      EXPECT_EQ(parts[0], "a");
      EXPECT_EQ(parts[1], "b");
      EXPECT_EQ(parts[2], "c");
      EXPECT_EQ(parts[3], "d");
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
}

TEST(MiniMpi, GatherAtNonZeroRoot) {
  run(3, [](Comm& comm) {
    auto vals = comm.gather_values<int>(2, comm.rank() * 10);
    if (comm.rank() == 2) {
      EXPECT_EQ(vals, (std::vector<int>{0, 10, 20}));
    }
  });
}

TEST(MiniMpi, Allgather) {
  run(4, [](Comm& comm) {
    std::string local = std::to_string(comm.rank());
    auto parts = comm.allgather(local);
    ASSERT_EQ(parts.size(), 4u);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(parts[static_cast<size_t>(r)], std::to_string(r));
    }
  });
}

TEST(MiniMpi, ReduceSum) {
  run(6, [](Comm& comm) {
    int64_t total = comm.reduce_sum<int64_t>(0, comm.rank());
    if (comm.rank() == 0) {
      EXPECT_EQ(total, 0 + 1 + 2 + 3 + 4 + 5);
    }
  });
}

TEST(MiniMpi, AllreduceSum) {
  run(7, [](Comm& comm) {
    double total = comm.allreduce_sum(1.5);
    EXPECT_DOUBLE_EQ(total, 7 * 1.5);
  });
}

TEST(MiniMpi, AllreduceMax) {
  run(5, [](Comm& comm) {
    int best = comm.allreduce_max((comm.rank() * 7) % 5);
    EXPECT_EQ(best, 4);  // ranks give 0,2,4,1,3
  });
}

TEST(MiniMpi, ExscanSum) {
  run(5, [](Comm& comm) {
    int64_t prefix = comm.exscan_sum<int64_t>(comm.rank() + 1);
    // rank r receives sum of (1..r).
    EXPECT_EQ(prefix, comm.rank() * (comm.rank() + 1) / 2);
  });
}

TEST(MiniMpi, RepeatedCollectivesInterleaved) {
  run(4, [](Comm& comm) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(comm.allreduce_sum(i), 4 * i);
      auto all = comm.allgather(std::to_string(comm.rank() + i));
      EXPECT_EQ(all[1], std::to_string(1 + i));
      comm.barrier();
    }
  });
}

TEST(MiniMpi, ManyRanks) {
  const int n = 64;
  int64_t total = 0;
  run(n, [&](Comm& comm) {
    int64_t sum = comm.allreduce_sum<int64_t>(comm.rank());
    if (comm.rank() == 0) {
      total = sum;
    }
  });
  EXPECT_EQ(total, static_cast<int64_t>(n) * (n - 1) / 2);
}

TEST(MiniMpi, RankFailurePropagates) {
  EXPECT_THROW(
      run(4,
          [](Comm& comm) {
            if (comm.rank() == 2) {
              throw UsageError("rank 2 exploded");
            }
            // Other ranks block; the abort must wake them.
            comm.barrier();
            comm.recv(2, 0);
          }),
      UsageError);
}

TEST(MiniMpi, FailureWakesBlockedReceivers) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) {
                       comm.recv(1, 5);  // never sent
                     } else {
                       throw FormatError("bad input");
                     }
                   }),
               FormatError);
}

TEST(MiniMpi, InvalidRankChecked) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) {
                       comm.send(5, 0, "x");
                     }
                   }),
               Error);
}

TEST(MiniMpi, ZeroRanksRejected) {
  EXPECT_THROW(run(0, [](Comm&) {}), Error);
}

TEST(MiniMpi, PipelineNeighborExchange) {
  // The Algorithm-1 shape: every rank r != 0 sends to r-1.
  const int n = 8;
  std::vector<uint64_t> got(n, 0);
  run(n, [&](Comm& comm) {
    int r = comm.rank();
    if (r != 0) {
      comm.send_value<uint64_t>(r - 1, 17, static_cast<uint64_t>(r) * 100);
    }
    if (r != n - 1) {
      got[static_cast<size_t>(r)] = comm.recv_value<uint64_t>(r + 1, 17);
    }
    comm.barrier();
  });
  for (int r = 0; r + 1 < n; ++r) {
    EXPECT_EQ(got[static_cast<size_t>(r)],
              static_cast<uint64_t>(r + 1) * 100);
  }
}

}  // namespace
}  // namespace ngsx::mpi
