// Stress suite for minimpi: randomized all-to-all message storms, mixed
// collectives under load, and repeated world construction — the
// concurrency hazards (lost wakeups, tag/source crosstalk, barrier
// generation bugs) that the deterministic unit tests cannot surface.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mpi/minimpi.h"
#include "util/rng.h"

namespace ngsx::mpi {
namespace {

class StressSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressSeeds, RandomizedAllToAllStorm) {
  // Every rank sends a random number of checksummed messages to every
  // other rank (random sizes, interleaved order), then receives exactly
  // the expected set. Per-(source,tag) FIFO lets receivers verify order.
  const int n = 8;
  const uint64_t seed = GetParam();
  std::atomic<uint64_t> total_received{0};
  run(n, [&](Comm& comm) {
    const int self = comm.rank();
    Rng rng(seed * 1000 + static_cast<uint64_t>(self));

    // Plan: counts[d] messages to each destination d (deterministic given
    // the seed, so receivers can derive the sender's plan).
    auto plan_for = [&](int sender) {
      Rng plan_rng(seed * 1000 + static_cast<uint64_t>(sender));
      std::vector<int> counts(n);
      for (int d = 0; d < n; ++d) {
        counts[static_cast<size_t>(d)] =
            d == sender ? 0 : static_cast<int>(plan_rng.below(20));
      }
      return counts;
    };
    std::vector<int> my_counts = plan_for(self);
    // Consume the same number of draws the plan used.
    for (int d = 0; d < n; ++d) {
      if (d != self) {
        rng.below(20);
      }
    }

    // Send phase: messages carry (sender, sequence) and a payload whose
    // bytes are derived from them.
    for (int d = 0; d < n; ++d) {
      for (int s = 0; s < my_counts[static_cast<size_t>(d)]; ++s) {
        std::string payload;
        size_t len = 1 + (static_cast<size_t>(self) * 131 +
                          static_cast<size_t>(s) * 17) %
                             512;
        payload.reserve(len + 8);
        for (size_t i = 0; i < len; ++i) {
          payload += static_cast<char>((self * 31 + s * 7 + i) & 0xFF);
        }
        comm.send(d, /*tag=*/5, payload);
      }
    }

    // Receive phase: from each source, expect its planned count, in order.
    uint64_t received = 0;
    for (int src = 0; src < n; ++src) {
      if (src == self) {
        continue;
      }
      int expected = plan_for(src)[static_cast<size_t>(self)];
      for (int s = 0; s < expected; ++s) {
        std::string payload = comm.recv(src, 5);
        size_t len = 1 + (static_cast<size_t>(src) * 131 +
                          static_cast<size_t>(s) * 17) %
                             512;
        ASSERT_EQ(payload.size(), len);
        for (size_t i = 0; i < payload.size(); ++i) {
          ASSERT_EQ(static_cast<unsigned char>(payload[i]),
                    (src * 31 + s * 7 + i) & 0xFF)
              << "src " << src << " seq " << s << " byte " << i;
        }
        ++received;
      }
      // Nothing extra pending from this source on this tag.
      EXPECT_FALSE(comm.probe(src, 5));
    }
    total_received.fetch_add(received);
    comm.barrier();
  });
  // Cross-check the global message count.
  uint64_t expected_total = 0;
  for (int sender = 0; sender < n; ++sender) {
    Rng plan_rng(seed * 1000 + static_cast<uint64_t>(sender));
    for (int d = 0; d < n; ++d) {
      if (d != sender) {
        expected_total += plan_rng.below(20);
      }
    }
  }
  EXPECT_EQ(total_received.load(), expected_total);
}

TEST_P(StressSeeds, CollectivesUnderPointToPointLoad) {
  // Interleave collectives with background point-to-point chatter; the
  // reserved internal tag space must keep them from interfering.
  const int n = 6;
  run(n, [&](Comm& comm) {
    Rng rng(GetParam() * 77 + static_cast<uint64_t>(comm.rank()));
    int64_t ring_sum = 0;
    for (int round = 0; round < 30; ++round) {
      // Background chatter on a ring.
      int next = (comm.rank() + 1) % n;
      int prev = (comm.rank() + n - 1) % n;
      comm.send_value<int64_t>(next, 9, comm.rank() + round);
      // Collective in the middle.
      int64_t total = comm.allreduce_sum<int64_t>(round);
      ASSERT_EQ(total, static_cast<int64_t>(n) * round);
      ring_sum += comm.recv_value<int64_t>(prev, 9);
      // Collectives must be entered by every rank in the same order, so
      // the "sometimes barrier" decision has to be rank-independent.
      if ((GetParam() * 31 + static_cast<uint64_t>(round)) % 3 == 0) {
        comm.barrier();
      }
      auto gathered = comm.allgather(std::to_string(comm.rank()));
      ASSERT_EQ(gathered.size(), static_cast<size_t>(n));
    }
    // Every rank received 30 ring messages from its predecessor.
    int prev = (comm.rank() + n - 1) % n;
    int64_t expect = 0;
    for (int round = 0; round < 30; ++round) {
      expect += prev + round;
    }
    EXPECT_EQ(ring_sum, expect);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeeds, ::testing::Values(1, 2, 3, 4));

TEST(MpiStress, RepeatedWorldsDoNotLeakState) {
  // Rapid create/destroy cycles; any leaked mailbox or barrier state
  // between worlds would surface as wrong sums.
  for (int iteration = 0; iteration < 50; ++iteration) {
    int64_t total = -1;
    run(5, [&](Comm& comm) {
      comm.barrier();
      int64_t sum = comm.allreduce_sum<int64_t>(comm.rank() + iteration);
      if (comm.rank() == 0) {
        total = sum;
      }
    });
    EXPECT_EQ(total, 10 + 5 * iteration);
  }
}

TEST(MpiStress, LargePayloads) {
  run(3, [](Comm& comm) {
    std::string big(8 << 20, static_cast<char>('A' + comm.rank()));
    auto parts = comm.allgather(big);
    for (int r = 0; r < 3; ++r) {
      ASSERT_EQ(parts[static_cast<size_t>(r)].size(), big.size());
      EXPECT_EQ(parts[static_cast<size_t>(r)][12345],
                static_cast<char>('A' + r));
    }
  });
}

TEST(MpiStress, AbortDuringStormUnblocksEveryone) {
  // One rank dies mid-storm while others are blocked in recv and barrier;
  // run() must return (with the original error) rather than hang.
  EXPECT_THROW(
      run(8,
          [](Comm& comm) {
            if (comm.rank() == 3) {
              comm.send_value(4, 1, 42);
              throw UsageError("rank 3 failed mid-storm");
            }
            if (comm.rank() == 4) {
              comm.recv_value<int>(3, 1);
            }
            // Everyone else blocks on something.
            if (comm.rank() % 2 == 0) {
              comm.recv(3, 99);  // never sent
            } else {
              comm.barrier();
            }
          }),
      UsageError);
}

}  // namespace
}  // namespace ngsx::mpi
