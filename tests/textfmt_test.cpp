// Tests for the target-format text serializers (BED, BEDGRAPH, FASTA,
// FASTQ, JSON, YAML).

#include <gtest/gtest.h>

#include "formats/textfmt.h"

namespace ngsx::textfmt {
namespace {

using sam::AlignmentRecord;
using sam::SamHeader;

SamHeader test_header() {
  return SamHeader::from_references({{"chr1", 100000}, {"chr2", 50000}});
}

AlignmentRecord mapped_record() {
  AlignmentRecord rec;
  rec.qname = "readA";
  rec.flag = sam::kPaired | sam::kRead1;
  rec.ref_id = 0;
  rec.pos = 999;
  rec.mapq = 42;
  rec.cigar = sam::parse_cigar("10M");
  rec.mate_ref_id = 0;
  rec.mate_pos = 1200;
  rec.tlen = 211;
  rec.seq = "ACGTACGTAC";
  rec.qual = "IIIIIIIIII";
  return rec;
}

AlignmentRecord unmapped_record() {
  AlignmentRecord rec;
  rec.qname = "lost";
  rec.flag = sam::kUnmapped;
  rec.seq = "ACGT";
  rec.qual = "!!!!";
  return rec;
}

// --------------------------------------------------------------------- BED

TEST(Bed, MappedRecordLine) {
  std::string out;
  EXPECT_TRUE(append_bed(mapped_record(), test_header(), out));
  EXPECT_EQ(out, "chr1\t999\t1009\treadA\t42\t+\n");
}

TEST(Bed, ReverseStrand) {
  AlignmentRecord rec = mapped_record();
  rec.flag |= sam::kReverse;
  std::string out;
  append_bed(rec, test_header(), out);
  EXPECT_NE(out.find("\t-\n"), std::string::npos);
}

TEST(Bed, SkipsUnmapped) {
  std::string out;
  EXPECT_FALSE(append_bed(unmapped_record(), test_header(), out));
  EXPECT_TRUE(out.empty());
}

TEST(Bed, EndUsesCigarSpan) {
  AlignmentRecord rec = mapped_record();
  rec.cigar = sam::parse_cigar("5M10D5M");  // span 20
  std::string out;
  append_bed(rec, test_header(), out);
  EXPECT_EQ(out, "chr1\t999\t1019\treadA\t42\t+\n");
}

// ---------------------------------------------------------------- BEDGRAPH

TEST(Bedgraph, MappedRecordLine) {
  std::string out;
  EXPECT_TRUE(append_bedgraph(mapped_record(), test_header(), out));
  EXPECT_EQ(out, "chr1\t999\t1009\t42\n");
}

TEST(Bedgraph, ShorterThanBed) {
  std::string bed;
  std::string bdg;
  append_bed(mapped_record(), test_header(), bed);
  append_bedgraph(mapped_record(), test_header(), bdg);
  EXPECT_LT(bdg.size(), bed.size());  // the paper's Fig 6 explanation
}

TEST(Bedgraph, SkipsUnmapped) {
  std::string out;
  EXPECT_FALSE(append_bedgraph(unmapped_record(), test_header(), out));
}

// ------------------------------------------------------------------- FASTA

TEST(Fasta, ForwardRead) {
  std::string out;
  EXPECT_TRUE(append_fasta(mapped_record(), test_header(), out));
  EXPECT_EQ(out, ">readA\nACGTACGTAC\n");
}

TEST(Fasta, ReverseReadIsComplemented) {
  AlignmentRecord rec = mapped_record();
  rec.flag |= sam::kReverse;
  std::string out;
  append_fasta(rec, test_header(), out);
  EXPECT_EQ(out, ">readA\n" + sam::reverse_complement("ACGTACGTAC") + "\n");
}

TEST(Fasta, UnmappedStillEmitted) {
  // FASTA/FASTQ extract the read itself; unmapped reads are wanted.
  std::string out;
  EXPECT_TRUE(append_fasta(unmapped_record(), test_header(), out));
  EXPECT_EQ(out, ">lost\nACGT\n");
}

TEST(Fasta, SkipsSequencelessRecord) {
  AlignmentRecord rec = mapped_record();
  rec.seq.clear();
  rec.qual.clear();
  std::string out;
  EXPECT_FALSE(append_fasta(rec, test_header(), out));
}

// ------------------------------------------------------------------- FASTQ

TEST(Fastq, PairedReadGetsMateSuffix) {
  std::string out;
  EXPECT_TRUE(append_fastq(mapped_record(), test_header(), out));
  EXPECT_EQ(out, "@readA/1\nACGTACGTAC\n+\nIIIIIIIIII\n");
}

TEST(Fastq, SecondOfPairSuffix) {
  AlignmentRecord rec = mapped_record();
  rec.flag = sam::kPaired | sam::kRead2;
  std::string out;
  append_fastq(rec, test_header(), out);
  EXPECT_EQ(out.substr(0, 9), "@readA/2\n");
}

TEST(Fastq, UnpairedNoSuffix) {
  AlignmentRecord rec = mapped_record();
  rec.flag = 0;
  std::string out;
  append_fastq(rec, test_header(), out);
  EXPECT_EQ(out.substr(0, 7), "@readA\n");
}

TEST(Fastq, ReverseStrandRestoresOrientation) {
  AlignmentRecord rec = mapped_record();
  rec.flag |= sam::kReverse;
  rec.seq = "AACC";
  rec.qual = "abcd";
  std::string out;
  append_fastq(rec, test_header(), out);
  EXPECT_NE(out.find("GGTT\n"), std::string::npos);
  EXPECT_NE(out.find("dcba\n"), std::string::npos);
}

TEST(Fastq, MissingQualsFilled) {
  AlignmentRecord rec = mapped_record();
  rec.qual.clear();
  std::string out;
  append_fastq(rec, test_header(), out);
  EXPECT_NE(out.find("BBBBBBBBBB\n"), std::string::npos);
}

// -------------------------------------------------------------------- JSON

TEST(Json, ContainsAllCoreFields) {
  AlignmentRecord rec = mapped_record();
  rec.tags.push_back(sam::parse_aux("NM:i:3"));
  rec.tags.push_back(sam::parse_aux("MD:Z:10"));
  std::string out;
  EXPECT_TRUE(append_json(rec, test_header(), out));
  EXPECT_NE(out.find("\"qname\":\"readA\""), std::string::npos);
  EXPECT_NE(out.find("\"rname\":\"chr1\""), std::string::npos);
  EXPECT_NE(out.find("\"pos\":1000"), std::string::npos);  // 1-based
  EXPECT_NE(out.find("\"cigar\":\"10M\""), std::string::npos);
  EXPECT_NE(out.find("\"NM\":3"), std::string::npos);
  EXPECT_NE(out.find("\"MD\":\"10\""), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

TEST(Json, EscapesSpecialCharacters) {
  AlignmentRecord rec = mapped_record();
  rec.qname = "we\"ird\\name";
  std::string out;
  append_json(rec, test_header(), out);
  EXPECT_NE(out.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(Json, UnmappedShowsStars) {
  std::string out;
  append_json(unmapped_record(), test_header(), out);
  EXPECT_NE(out.find("\"rname\":\"*\""), std::string::npos);
  EXPECT_NE(out.find("\"pos\":0"), std::string::npos);
}

// -------------------------------------------------------------------- YAML

TEST(Yaml, ListItemStructure) {
  std::string out;
  EXPECT_TRUE(append_yaml(mapped_record(), test_header(), out));
  EXPECT_EQ(out.substr(0, 2), "- ");
  EXPECT_NE(out.find("qname: \"readA\""), std::string::npos);
  EXPECT_NE(out.find("\n  rname: \"chr1\""), std::string::npos);
  EXPECT_NE(out.find("\n  pos: 1000"), std::string::npos);
}

TEST(Yaml, TagsNested) {
  AlignmentRecord rec = mapped_record();
  rec.tags.push_back(sam::parse_aux("NM:i:2"));
  std::string out;
  append_yaml(rec, test_header(), out);
  EXPECT_NE(out.find("\n  tags:\n    NM: \"2\""), std::string::npos);
}

}  // namespace
}  // namespace ngsx::textfmt
