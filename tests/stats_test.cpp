// Tests for the statistical-analysis module: coverage histograms, NL-means
// denoising (sequential/parallel equivalence — the paper's halo replication
// correctness), and FDR (reference == fused == Algorithm 2 == two-pass).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "simdata/histsim.h"
#include "simdata/readsim.h"
#include "stats/fdr.h"
#include "stats/histogram.h"
#include "stats/nlmeans.h"
#include "util/tempdir.h"

namespace ngsx::stats {
namespace {

using sam::AlignmentRecord;
using sam::SamHeader;

// ---------------------------------------------------------------- histogram

SamHeader small_header() {
  return SamHeader::from_references({{"chr1", 1000}, {"chr2", 500}});
}

AlignmentRecord rec_at(int32_t ref, int32_t pos, const char* cigar = "90M") {
  AlignmentRecord rec;
  rec.qname = "r";
  rec.ref_id = ref;
  rec.pos = pos;
  rec.cigar = sam::parse_cigar(cigar);
  return rec;
}

TEST(Histogram, BinCountsFromLengths) {
  CoverageHistogram h(small_header(), 25);
  EXPECT_EQ(h.bins(0).size(), 40u);  // 1000/25
  EXPECT_EQ(h.bins(1).size(), 20u);
  EXPECT_EQ(h.total_bins(), 60u);
}

TEST(Histogram, RoundsUpPartialBin) {
  CoverageHistogram h(SamHeader::from_references({{"c", 26}}), 25);
  EXPECT_EQ(h.bins(0).size(), 2u);
}

TEST(Histogram, AddCoversOverlappedBins) {
  CoverageHistogram h(small_header(), 25);
  // 90M starting at 10 covers [10,100) -> bins 0..3.
  EXPECT_TRUE(h.add(rec_at(0, 10)));
  for (size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(h.bins(0)[b], 1.0) << "bin " << b;
  }
  EXPECT_EQ(h.bins(0)[4], 0.0);
}

TEST(Histogram, SingleBinAlignment) {
  CoverageHistogram h(small_header(), 25);
  h.add(rec_at(0, 30, "10M"));
  EXPECT_EQ(h.bins(0)[1], 1.0);
  EXPECT_EQ(h.bins(0)[0], 0.0);
  EXPECT_EQ(h.bins(0)[2], 0.0);
}

TEST(Histogram, SkipsUnmapped) {
  CoverageHistogram h(small_header(), 25);
  AlignmentRecord rec = rec_at(0, 10);
  rec.flag = sam::kUnmapped;
  EXPECT_FALSE(h.add(rec));
  rec = rec_at(-1, -1, "*");
  EXPECT_FALSE(h.add(rec));
}

TEST(Histogram, ClampsAtChromosomeEnd) {
  CoverageHistogram h(small_header(), 25);
  EXPECT_TRUE(h.add(rec_at(0, 990)));  // spills past 1000
  EXPECT_EQ(h.bins(0).back(), 1.0);
}

TEST(Histogram, FlattenConcatenatesChromosomes) {
  CoverageHistogram h(small_header(), 25);
  h.add(rec_at(0, 0, "10M"));
  h.add(rec_at(1, 0, "10M"));
  auto flat = h.flatten();
  ASSERT_EQ(flat.size(), 60u);
  EXPECT_EQ(flat[0], 1.0);
  EXPECT_EQ(flat[40], 1.0);  // first bin of chr2
}

TEST(Histogram, BedgraphRoundTrip) {
  TempDir tmp;
  CoverageHistogram h(small_header(), 25);
  for (int i = 0; i < 30; ++i) {
    h.add(rec_at(0, (i * 37) % 900));
    h.add(rec_at(1, (i * 53) % 400, "45M"));
  }
  std::string path = tmp.file("h.bedgraph");
  h.write_bedgraph(path);
  auto back = CoverageHistogram::read_bedgraph(path, small_header(), 25);
  EXPECT_EQ(back.bins(0), h.bins(0));
  EXPECT_EQ(back.bins(1), h.bins(1));
}

TEST(Histogram, BedgraphMergesRuns) {
  TempDir tmp;
  CoverageHistogram h(SamHeader::from_references({{"c", 100}}), 10);
  // All bins zero -> exactly one run per chromosome.
  std::string path = tmp.file("h.bedgraph");
  h.write_bedgraph(path);
  std::string text = read_file(path);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
  EXPECT_EQ(text, "c\t0\t100\t0\n");
}

TEST(Histogram, FromSamAndBamAgree) {
  TempDir tmp;
  auto genome = simdata::ReferenceGenome::simulate(
      simdata::mouse_like_references(300000), 14);
  simdata::ReadSimConfig cfg;
  cfg.seed = 14;
  std::string sam_path = tmp.file("x.sam");
  std::string bam_path = tmp.file("x.bam");
  simdata::write_sam_dataset(sam_path, genome, 200, cfg);
  simdata::write_bam_dataset(bam_path, genome, 200, cfg);
  auto from_sam = histogram_from_sam(sam_path, 25);
  auto from_bam = histogram_from_bam(bam_path, 25);
  EXPECT_EQ(from_sam.flatten(), from_bam.flatten());
  // Mean coverage should be near pairs*2*90 / genome_size.
  auto flat = from_sam.flatten();
  double covered =
      std::accumulate(flat.begin(), flat.end(), 0.0) * 25;
  EXPECT_GT(covered, 0.0);
}

// ----------------------------------------------------------------- NL-means

std::vector<double> noisy_signal(size_t n, uint64_t seed) {
  simdata::HistSimConfig cfg;
  cfg.seed = seed;
  return simdata::simulate_histogram(n, cfg);
}

TEST(NlMeans, ConstantInputIsFixedPoint) {
  std::vector<double> flat(500, 7.0);
  NlMeansParams params;
  auto out = nlmeans(flat, params);
  for (double v : out) {
    EXPECT_NEAR(v, 7.0, 1e-9);
  }
}

TEST(NlMeans, OutputSizeMatches) {
  auto data = noisy_signal(1000, 3);
  EXPECT_EQ(nlmeans(data, {}).size(), data.size());
  EXPECT_TRUE(nlmeans(std::vector<double>{}, {}).empty());
}

TEST(NlMeans, ReducesNoiseVariance) {
  // Pure noise around a constant: denoising must shrink the variance.
  auto data = simdata::simulate_null(4000, 10.0, 5);
  auto out = nlmeans(data, {});
  auto variance = [](const std::vector<double>& v) {
    double mean = std::accumulate(v.begin(), v.end(), 0.0) / v.size();
    double acc = 0;
    for (double x : v) {
      acc += (x - mean) * (x - mean);
    }
    return acc / v.size();
  };
  EXPECT_LT(variance(out), variance(data) * 0.5);
}

TEST(NlMeans, PreservesMeanApproximately) {
  auto data = noisy_signal(3000, 9);
  auto out = nlmeans(data, {});
  double in_mean = std::accumulate(data.begin(), data.end(), 0.0) /
                   data.size();
  double out_mean =
      std::accumulate(out.begin(), out.end(), 0.0) / out.size();
  EXPECT_NEAR(out_mean, in_mean, in_mean * 0.1);
}

TEST(NlMeans, RangeApiMatchesWhole) {
  auto data = noisy_signal(800, 7);
  auto whole = nlmeans(data, {});
  std::vector<double> part(300);
  nlmeans_range(data, 200, 500, {}, part);
  for (size_t i = 0; i < 300; ++i) {
    EXPECT_DOUBLE_EQ(part[i], whole[200 + i]);
  }
}

class NlMeansRanks : public ::testing::TestWithParam<int> {};

TEST_P(NlMeansRanks, ParallelBitIdenticalToSequential) {
  auto data = noisy_signal(2000, 31);
  NlMeansParams params;
  auto seq = nlmeans(data, params);
  auto par = nlmeans_parallel(data, params, GetParam());
  ASSERT_EQ(par.size(), seq.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_DOUBLE_EQ(par[i], seq[i]) << "point " << i;
  }
}

TEST_P(NlMeansRanks, OmpBitIdenticalToSequential) {
  auto data = noisy_signal(1500, 32);
  NlMeansParams params;
  params.r = 12;
  params.l = 5;
  auto seq = nlmeans(data, params);
  auto par = nlmeans_parallel_omp(data, params, GetParam());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_DOUBLE_EQ(par[i], seq[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(RankSweep, NlMeansRanks,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(NlMeans, TinyPartitionsStillCorrect) {
  // Partitions smaller than the halo exercise the deep-halo fallback.
  auto data = noisy_signal(40, 33);
  NlMeansParams params;  // r+l = 35 > 40/8 = 5 per rank
  auto seq = nlmeans(data, params);
  auto par = nlmeans_parallel(data, params, 8);
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_DOUBLE_EQ(par[i], seq[i]);
  }
}

TEST(NlMeans, HaloFallbackPartitionsBitIdentical) {
  // Partitions smaller than the halo (r + l): a single neighbour's halo
  // message cannot cover the needed span and the global-read fallback in
  // nlmeans_parallel kicks in. The kernel clamps windows at the *global*
  // boundaries either way, so the result must stay bit-identical to the
  // sequential pass for every rank count that forces the fallback —
  // including ranks == n (one bin per rank) and empty partitions
  // (ranks > n).
  auto data = noisy_signal(24, 29);
  NlMeansParams params;
  params.r = 4;
  params.l = 3;  // halo = 7, far above 24/8 = 3 bins per rank
  params.sigma = 8.0;
  auto seq = nlmeans(data, params);
  for (int ranks : {3, 5, 8, 16, 24, 30}) {
    auto par = nlmeans_parallel(data, params, ranks);
    ASSERT_EQ(par.size(), seq.size());
    for (size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(par[i], seq[i]) << "ranks=" << ranks << " bin=" << i;
    }
  }
}

TEST(NlMeans, VariousParameters) {
  auto data = noisy_signal(600, 41);
  for (int r : {1, 5, 40}) {
    for (int l : {0, 1, 10}) {
      NlMeansParams params;
      params.r = r;
      params.l = l;
      auto seq = nlmeans(data, params);
      auto par = nlmeans_parallel(data, params, 4);
      for (size_t i = 0; i < seq.size(); ++i) {
        ASSERT_DOUBLE_EQ(par[i], seq[i]) << "r=" << r << " l=" << l;
      }
    }
  }
}

TEST(NlMeans, InvalidParamsRejected) {
  std::vector<double> data(10, 1.0);
  NlMeansParams bad;
  bad.sigma = 0;
  EXPECT_THROW(nlmeans(data, bad), Error);
  bad = {};
  bad.r = -1;
  EXPECT_THROW(nlmeans(data, bad), Error);
}

// ---------------------------------------------------------------------- FDR

struct FdrFixture {
  std::vector<double> hist;
  SimulationSet sims;

  explicit FdrFixture(size_t m = 500, size_t b = 12, uint64_t seed = 3) {
    simdata::HistSimConfig cfg;
    cfg.seed = seed;
    cfg.peak_density = 0.01;
    hist = simdata::simulate_histogram(m, cfg);
    sims = simdata::simulate_null_batch(m, b, cfg.background_rate, seed);
  }
};

TEST(Fdr, HandComputedExample) {
  // M=3 bins, B=2 sims; verify against a by-hand evaluation of eqs. 4-6.
  std::vector<double> hist = {5, 0, 2};
  SimulationSet sims = {{1, 2, 3}, {4, 0, 1}};
  // p_i: bin0: 5<=1? no, 5<=4? no -> 0. bin1: 0<=2 yes, 0<=0 yes -> 2.
  //      bin2: 2<=3 yes, 2<=1 no -> 1.
  // For p_t=0: denominator = #(p_i<=0) = 1 (bin0).
  // inner ranks: sim b=0: bin0: 1<=1,1<=4 -> 2; bin1: 2<=2,2<=0 -> 1;
  //   bin2: 3<=3,3<=1 -> 1. d_0 = #(rank<=0) = 0.
  // sim b=1: bin0: 4<=1,4<=4 -> 1; bin1: 0<=2,0<=0 -> 2; bin2: 1<=3,1<=1 ->2.
  //   d_1 = 0. numerator = (0+0)/2 = 0 -> FDR 0.
  FdrResult r0 = fdr_reference(hist, sims, 0);
  EXPECT_DOUBLE_EQ(r0.numerator, 0.0);
  EXPECT_DOUBLE_EQ(r0.denominator, 1.0);
  EXPECT_DOUBLE_EQ(r0.fdr, 0.0);
  // For p_t=1: denominator = #(p_i<=1) = 2 (bin0, bin2).
  // d_0 = #(rank<=1) = 2 (bins 1,2); d_1 = #(rank<=1) = 1 (bin0).
  // numerator = 3/2 = 1.5; FDR = 1.5/2 = 0.75.
  FdrResult r1 = fdr_reference(hist, sims, 1);
  EXPECT_DOUBLE_EQ(r1.numerator, 1.5);
  EXPECT_DOUBLE_EQ(r1.denominator, 2.0);
  EXPECT_DOUBLE_EQ(r1.fdr, 0.75);
}

TEST(Fdr, FusedEqualsReference) {
  FdrFixture f;
  for (int p_t : {0, 1, 3, 6, 12}) {
    FdrResult ref = fdr_reference(f.hist, f.sims, p_t);
    FdrResult fused = fdr_fused(f.hist, f.sims, p_t);
    EXPECT_DOUBLE_EQ(fused.numerator, ref.numerator) << "p_t=" << p_t;
    EXPECT_DOUBLE_EQ(fused.denominator, ref.denominator);
    EXPECT_DOUBLE_EQ(fused.fdr, ref.fdr);
  }
}

class FdrRanks : public ::testing::TestWithParam<int> {};

TEST_P(FdrRanks, ParallelEqualsReference) {
  FdrFixture f;
  for (int p_t : {0, 2, 7}) {
    FdrResult ref = fdr_reference(f.hist, f.sims, p_t);
    FdrResult par = fdr_parallel(f.hist, f.sims, p_t, GetParam());
    EXPECT_DOUBLE_EQ(par.fdr, ref.fdr) << "p_t=" << p_t;
    EXPECT_DOUBLE_EQ(par.numerator, ref.numerator);
    EXPECT_DOUBLE_EQ(par.denominator, ref.denominator);
  }
}

TEST_P(FdrRanks, TwoPassEqualsReference) {
  FdrFixture f;
  FdrResult ref = fdr_reference(f.hist, f.sims, 4);
  FdrResult two = fdr_parallel_two_pass(f.hist, f.sims, 4, GetParam());
  EXPECT_DOUBLE_EQ(two.fdr, ref.fdr);
}

TEST_P(FdrRanks, OmpEqualsReference) {
  FdrFixture f;
  FdrResult ref = fdr_reference(f.hist, f.sims, 4);
  FdrResult omp = fdr_parallel_omp(f.hist, f.sims, 4, GetParam());
  EXPECT_DOUBLE_EQ(omp.fdr, ref.fdr);
}

INSTANTIATE_TEST_SUITE_P(RankSweep, FdrRanks,
                         ::testing::Values(1, 2, 3, 8, 16));

TEST(Fdr, MoreRanksThanBins) {
  FdrFixture f(/*m=*/5, /*b=*/4);
  FdrResult ref = fdr_reference(f.hist, f.sims, 1);
  FdrResult par = fdr_parallel(f.hist, f.sims, 1, 16);
  EXPECT_DOUBLE_EQ(par.fdr, ref.fdr);
}

TEST(Fdr, ZeroDenominatorSafe) {
  // A histogram far above every simulation: p_i = 0 everywhere, so the
  // denominator at p_t = -1 is 0 (impossible threshold).
  std::vector<double> hist = {100, 100};
  SimulationSet sims = {{1, 1}, {2, 2}};
  FdrResult res = fdr_fused(hist, sims, -1);
  EXPECT_DOUBLE_EQ(res.denominator, 0.0);
  EXPECT_DOUBLE_EQ(res.fdr, 0.0);
}

TEST(Fdr, MismatchedSizesRejected) {
  std::vector<double> hist = {1, 2, 3};
  SimulationSet sims = {{1, 2}};
  EXPECT_THROW(fdr_fused(hist, sims, 1), Error);
  EXPECT_THROW(fdr_fused(hist, {}, 1), Error);
}

TEST(Fdr, PeakyHistogramHasLowFdrAtStrictThreshold) {
  // Real peaks (histogram >> null): at strict p_t the discoveries are
  // dominated by true peaks, so FDR stays below the null expectation.
  FdrFixture f(/*m=*/2000, /*b=*/20, /*seed=*/8);
  FdrResult strict = fdr_fused(f.hist, f.sims, 0);
  EXPECT_GT(strict.denominator, 0.0);
  EXPECT_LT(strict.fdr, 0.5);
}

TEST(Fdr, SelectThresholdFindsQualifyingPt) {
  FdrFixture f(/*m=*/1500, /*b=*/16, /*seed=*/10);
  int p_t = select_threshold(f.hist, f.sims, 0.2);
  ASSERT_GE(p_t, 0);
  FdrResult at = fdr_fused(f.hist, f.sims, p_t);
  EXPECT_LE(at.fdr, 0.2);
  EXPECT_GT(at.denominator, 0.0);
}

TEST(Fdr, SelectThresholdPtZeroIsExactlyZeroFdr) {
  // The p_t = 0 numerator is structurally zero (every simulated value
  // ranks at least itself), so any bin with p_i = 0 makes FDR exactly 0 —
  // the tightened denominator-only fast path must select p_t = 0 even for
  // a target of 0.0.
  std::vector<double> hist = {100, 100};
  SimulationSet sims = {{1, 1}, {2, 2}};
  EXPECT_EQ(select_threshold(hist, sims, 0.0), 0);
  FdrResult at = fdr_reference(hist, sims, 0);
  EXPECT_DOUBLE_EQ(at.numerator, 0.0);
  EXPECT_DOUBLE_EQ(at.fdr, 0.0);
  EXPECT_GT(at.denominator, 0.0);
}

TEST(Fdr, SelectThresholdMatchesReferenceSweep) {
  // The fast path plus the fused p_t >= 1 sweep must pick exactly the
  // threshold a naive reference sweep would.
  FdrFixture f(/*m=*/300, /*b=*/8, /*seed=*/21);
  for (double target : {0.0, 0.05, 0.2, 0.8}) {
    int naive = -1;
    for (int p_t = 0; p_t <= static_cast<int>(f.sims.size()); ++p_t) {
      FdrResult res = fdr_reference(f.hist, f.sims, p_t);
      if (res.denominator > 0 && res.fdr <= target) {
        naive = p_t;
        break;
      }
    }
    EXPECT_EQ(select_threshold(f.hist, f.sims, target), naive)
        << "target=" << target;
  }
}

TEST(Fdr, SelectThresholdEmptyHistogram) {
  // M = 0 is the only input whose denominator is zero at *every*
  // threshold (even p_t = B, which counts all M bins). The target is then
  // vacuously met: the old code fell through its sweep and reported -1
  // ("nothing qualifies") even for a trivially satisfiable target.
  std::vector<double> hist;
  SimulationSet sims = {{}, {}};
  EXPECT_EQ(select_threshold(hist, sims, 0.0), 0);
  EXPECT_EQ(select_threshold(hist, sims, 0.5), 0);
  EXPECT_EQ(select_threshold(hist, sims, -0.1), -1);
}

TEST(Fdr, SelectThresholdReturnsMinusOneWhenImpossible) {
  // Histogram below all simulations: every bin is "discovered" even at
  // lenient thresholds and the null rate is high; target 0 unachievable
  // when every d_b > 0.
  std::vector<double> hist(50, 0.0);
  SimulationSet sims;
  for (int b = 0; b < 4; ++b) {
    sims.push_back(std::vector<double>(50, 5.0 + b));
  }
  EXPECT_EQ(select_threshold(hist, sims, -0.1), -1);
}

}  // namespace
}  // namespace ngsx::stats
