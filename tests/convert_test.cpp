// End-to-end tests for the three converter instances (§III): output
// equivalence across rank counts and formats, preprocessing fidelity, and
// partial conversion.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/convert.h"
#include "formats/bam.h"
#include "simdata/readsim.h"
#include "util/tempdir.h"

namespace ngsx::core {
namespace {

namespace fs = std::filesystem;
using sam::AlignmentRecord;

struct Dataset {
  TempDir tmp;
  simdata::ReferenceGenome genome;
  std::vector<AlignmentRecord> records;
  std::string sam_path;
  std::string bam_path;

  explicit Dataset(uint64_t pairs = 300, uint64_t seed = 33)
      : genome(simdata::ReferenceGenome::simulate(
            simdata::mouse_like_references(400000), seed)) {
    simdata::ReadSimConfig cfg;
    cfg.seed = seed;
    records = simdata::simulate_alignments(genome, pairs, cfg);
    sam_path = tmp.file("in.sam");
    bam_path = tmp.file("in.bam");
    {
      sam::SamFileWriter w(sam_path, genome.header());
      for (const auto& r : records) {
        w.write(r);
      }
      w.close();
    }
    {
      bam::BamFileWriter w(bam_path, genome.header());
      for (const auto& r : records) {
        w.write(r);
      }
      w.close();
    }
  }
};

/// Concatenates the part files of a conversion in rank order.
std::string concat_outputs(const ConvertStats& stats) {
  std::string all;
  for (const auto& path : stats.outputs) {
    all += read_file(path);
  }
  return all;
}

/// The expected text for converting `records` sequentially with `format`.
std::string expected_text(const Dataset& d, TargetFormat format) {
  TempDir tmp;
  std::string path = tmp.file("expected");
  auto writer = make_target_writer(format, path, d.genome.header(),
                                   /*include_header=*/false);
  for (const auto& rec : d.records) {
    writer->write(rec);
  }
  writer->close();
  return read_file(path);
}

// ----------------------------------------------------------------- regions

TEST(Region, ParseFullChromosome) {
  Dataset d(10);
  Region r = parse_region("chr2", d.genome.header());
  EXPECT_EQ(r.ref_id, 1);
  EXPECT_EQ(r.begin, 0);
  EXPECT_EQ(r.end, d.genome.header().ref_length(1));
}

TEST(Region, ParseRange) {
  Dataset d(10);
  Region r = parse_region("chr1:1001-2000", d.genome.header());
  EXPECT_EQ(r.ref_id, 0);
  EXPECT_EQ(r.begin, 1000);  // 1-based inclusive -> 0-based half-open
  EXPECT_EQ(r.end, 2000);
}

TEST(Region, ParseErrors) {
  Dataset d(10);
  EXPECT_THROW(parse_region("chrNope", d.genome.header()), UsageError);
  EXPECT_THROW(parse_region("chr1:5-2", d.genome.header()), UsageError);
  EXPECT_THROW(parse_region("chr1:0-10", d.genome.header()), UsageError);
}

// ------------------------------------------------------------ SAM converter

class SamConvertRanks : public ::testing::TestWithParam<int> {};

TEST_P(SamConvertRanks, BedOutputMatchesSequentialAcrossRanks) {
  Dataset d;
  ConvertOptions options;
  options.format = TargetFormat::kBed;
  options.ranks = GetParam();
  auto stats = convert_sam(d.sam_path, d.tmp.subdir("out"), options);
  EXPECT_EQ(stats.records_in, d.records.size());
  EXPECT_EQ(stats.outputs.size(), static_cast<size_t>(GetParam()));
  EXPECT_EQ(concat_outputs(stats), expected_text(d, TargetFormat::kBed));
}

INSTANTIATE_TEST_SUITE_P(RankSweep, SamConvertRanks,
                         ::testing::Values(1, 2, 4, 7, 16));

TEST(SamConverter, AllTextFormats) {
  Dataset d(150);
  for (TargetFormat format :
       {TargetFormat::kBed, TargetFormat::kBedgraph, TargetFormat::kFasta,
        TargetFormat::kFastq, TargetFormat::kJson, TargetFormat::kYaml}) {
    ConvertOptions options;
    options.format = format;
    options.ranks = 3;
    auto stats = convert_sam(
        d.tmp.path() + "/in.sam",
        d.tmp.subdir("out-" + std::string(target_format_name(format))),
        options);
    EXPECT_EQ(concat_outputs(stats), expected_text(d, format))
        << target_format_name(format);
  }
}

TEST(SamConverter, SamToSamPreservesRecords) {
  Dataset d(100);
  ConvertOptions options;
  options.format = TargetFormat::kSam;
  options.ranks = 4;
  options.include_header = false;
  auto stats = convert_sam(d.sam_path, d.tmp.subdir("sam-out"), options);
  std::string body = concat_outputs(stats);
  // Re-parse every line and compare to the source records.
  std::vector<AlignmentRecord> parsed;
  size_t pos = 0;
  AlignmentRecord rec;
  while (pos < body.size()) {
    size_t nl = body.find('\n', pos);
    sam::parse_record(std::string_view(body).substr(pos, nl - pos),
                      d.genome.header(), rec);
    parsed.push_back(rec);
    pos = nl + 1;
  }
  EXPECT_EQ(parsed, d.records);
}

TEST(SamConverter, SamToBamRoundTrip) {
  Dataset d(80);
  ConvertOptions options;
  options.format = TargetFormat::kBam;
  options.ranks = 2;
  auto stats = convert_sam(d.sam_path, d.tmp.subdir("bam-out"), options);
  std::vector<AlignmentRecord> all;
  for (const auto& path : stats.outputs) {
    bam::BamFileReader reader(path);
    AlignmentRecord rec;
    while (reader.next(rec)) {
      all.push_back(rec);
    }
  }
  EXPECT_EQ(all, d.records);
}

TEST(SamConverter, RecordCountsTracked) {
  Dataset d(120);
  ConvertOptions options;
  options.format = TargetFormat::kBed;
  options.ranks = 5;
  auto stats = convert_sam(d.sam_path, d.tmp.subdir("out"), options);
  uint64_t mapped = 0;
  for (const auto& rec : d.records) {
    mapped += !rec.is_unmapped() && rec.ref_id >= 0 ? 1 : 0;
  }
  EXPECT_EQ(stats.records_in, d.records.size());
  EXPECT_EQ(stats.records_out, mapped);  // BED skips unmapped
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
}

// ------------------------------------------------------------ BAM converter

TEST(BamConverter, PreprocessProducesFaithfulBamx) {
  Dataset d(200);
  std::string bamx = d.tmp.file("p.bamx");
  std::string baix = d.tmp.file("p.baix");
  auto stats = preprocess_bam(d.bam_path, bamx, baix);
  EXPECT_EQ(stats.records, d.records.size());
  bamx::BamxReader reader(bamx);
  ASSERT_EQ(reader.num_records(), d.records.size());
  AlignmentRecord rec;
  for (size_t i = 0; i < d.records.size(); ++i) {
    reader.read(i, rec);
    EXPECT_EQ(rec, d.records[i]) << "record " << i;
  }
  // BAIX covers every record.
  EXPECT_EQ(bamx::BaixIndex::load(baix).size(), d.records.size());
}

class BamConvertRanks : public ::testing::TestWithParam<int> {};

TEST_P(BamConvertRanks, FullConversionMatchesSequential) {
  Dataset d;
  std::string bamx = d.tmp.file("p.bamx");
  std::string baix = d.tmp.file("p.baix");
  preprocess_bam(d.bam_path, bamx, baix);
  ConvertOptions options;
  options.format = TargetFormat::kBedgraph;
  options.ranks = GetParam();
  auto stats = convert_bamx(bamx, baix, d.tmp.subdir("out"), options);
  EXPECT_EQ(stats.records_in, d.records.size());
  EXPECT_EQ(concat_outputs(stats), expected_text(d, TargetFormat::kBedgraph));
}

INSTANTIATE_TEST_SUITE_P(RankSweep, BamConvertRanks,
                         ::testing::Values(1, 2, 3, 8, 13));

TEST(BamConverter, PartialConversionSelectsRegion) {
  Dataset d(400);
  std::string bamx = d.tmp.file("p.bamx");
  std::string baix = d.tmp.file("p.baix");
  preprocess_bam(d.bam_path, bamx, baix);

  Region region = parse_region("chr1:1-50000", d.genome.header());
  ConvertOptions options;
  options.format = TargetFormat::kBed;
  options.ranks = 4;
  auto stats =
      convert_bamx(bamx, baix, d.tmp.subdir("part"), options, region);

  uint64_t expected = 0;
  for (const auto& rec : d.records) {
    if (rec.ref_id == region.ref_id && rec.pos >= region.begin &&
        rec.pos < region.end) {
      ++expected;
    }
  }
  EXPECT_EQ(stats.records_in, expected);
  EXPECT_GT(expected, 0u);

  // Every emitted BED row is inside the region (starts within).
  std::string body = concat_outputs(stats);
  size_t pos = 0;
  while (pos < body.size()) {
    size_t nl = body.find('\n', pos);
    std::string_view line(body.data() + pos, nl - pos);
    EXPECT_EQ(line.substr(0, 5), "chr1\t");
    pos = nl + 1;
  }
}

TEST(BamConverter, PartialSizesProportional) {
  // The Fig 8 property: converting x% of the data touches ~x% of records.
  Dataset d(500);
  std::string bamx = d.tmp.file("p.bamx");
  std::string baix = d.tmp.file("p.baix");
  preprocess_bam(d.bam_path, bamx, baix);
  int32_t chr1_len =
      static_cast<int32_t>(d.genome.header().ref_length(0));
  ConvertOptions options;
  options.format = TargetFormat::kBed;
  options.ranks = 2;
  uint64_t prev = 0;
  for (int pct : {20, 40, 60, 80, 100}) {
    Region region{0, 0, static_cast<int32_t>(
                            static_cast<int64_t>(chr1_len) * pct / 100)};
    auto stats = convert_bamx(
        bamx, baix, d.tmp.subdir("p" + std::to_string(pct)), options, region);
    EXPECT_GE(stats.records_in, prev);
    prev = stats.records_in;
  }
}

TEST(BamConverter, PartialWithoutBaixRejected) {
  Dataset d(50);
  std::string bamx = d.tmp.file("p.bamx");
  std::string baix = d.tmp.file("p.baix");
  preprocess_bam(d.bam_path, bamx, baix);
  ConvertOptions options;
  options.ranks = 2;
  EXPECT_THROW(convert_bamx(bamx, "", d.tmp.subdir("x"), options,
                            Region{0, 0, 1000}),
               Error);
}

TEST(BamConverter, SequentialStreamMatches) {
  Dataset d(150);
  std::string out = d.tmp.file("seq.fastq");
  auto stats =
      convert_bam_sequential(d.bam_path, out, TargetFormat::kFastq);
  EXPECT_EQ(stats.records_in, d.records.size());
  EXPECT_EQ(read_file(out), expected_text(d, TargetFormat::kFastq));
}

// ------------------------------- preprocessing-optimized SAM converter

class PreprocSamRanks : public ::testing::TestWithParam<int> {};

TEST_P(PreprocSamRanks, ShardsContainAllRecords) {
  Dataset d;
  const int m = GetParam();
  auto stats =
      preprocess_sam_parallel(d.sam_path, d.tmp.subdir("shards"), m);
  EXPECT_EQ(stats.records, d.records.size());
  ASSERT_EQ(stats.bamx_paths.size(), static_cast<size_t>(m));
  // Concatenating shard records in order reproduces the input.
  std::vector<AlignmentRecord> all;
  for (const auto& path : stats.bamx_paths) {
    bamx::BamxReader reader(path);
    AlignmentRecord rec;
    for (uint64_t i = 0; i < reader.num_records(); ++i) {
      reader.read(i, rec);
      all.push_back(rec);
    }
  }
  EXPECT_EQ(all, d.records);
}

INSTANTIATE_TEST_SUITE_P(RankSweep, PreprocSamRanks,
                         ::testing::Values(1, 2, 4, 9));

TEST(PreprocSamConverter, MxNConversionMatchesSequential) {
  Dataset d(250);
  const int m = 3;
  auto pre = preprocess_sam_parallel(d.sam_path, d.tmp.subdir("shards"), m);
  ConvertOptions options;
  options.format = TargetFormat::kFasta;
  options.ranks = 4;  // N
  auto stats =
      convert_bamx_shards(pre.bamx_paths, d.tmp.subdir("conv"), options);
  // M x N part files.
  EXPECT_EQ(stats.outputs.size(), static_cast<size_t>(m * 4));
  EXPECT_EQ(concat_outputs(stats), expected_text(d, TargetFormat::kFasta));
}

TEST(PreprocSamConverter, ShardBaixSupportsPartial) {
  Dataset d(300);
  auto pre = preprocess_sam_parallel(d.sam_path, d.tmp.subdir("shards"), 2);
  // Each shard's BAIX must agree with its BAMX contents.
  for (size_t s = 0; s < pre.bamx_paths.size(); ++s) {
    bamx::BamxReader reader(pre.bamx_paths[s]);
    bamx::BaixIndex index = bamx::BaixIndex::load(pre.baix_paths[s]);
    EXPECT_EQ(index.size(), reader.num_records());
  }
}

// ------------------------------------------------------------ target layer

TEST(TargetFormat, ParseNames) {
  EXPECT_EQ(parse_target_format("BED"), TargetFormat::kBed);
  EXPECT_EQ(parse_target_format("bedgraph"), TargetFormat::kBedgraph);
  EXPECT_EQ(parse_target_format("fq"), TargetFormat::kFastq);
  EXPECT_EQ(parse_target_format("yml"), TargetFormat::kYaml);
  EXPECT_THROW(parse_target_format("xml"), UsageError);
}

TEST(TargetFormat, NamesAndExtensionsConsistent) {
  for (TargetFormat f :
       {TargetFormat::kSam, TargetFormat::kBam, TargetFormat::kBed,
        TargetFormat::kBedgraph, TargetFormat::kFasta, TargetFormat::kFastq,
        TargetFormat::kJson, TargetFormat::kYaml}) {
    EXPECT_EQ(parse_target_format(target_format_name(f)), f);
    EXPECT_EQ(target_extension(f)[0], '.');
  }
}

TEST(TargetWriter, SamHeaderToggle) {
  Dataset d(5);
  std::string with = d.tmp.file("with.sam");
  std::string without = d.tmp.file("without.sam");
  {
    auto w = make_target_writer(TargetFormat::kSam, with, d.genome.header(),
                                true);
    w->write(d.records[0]);
    w->close();
  }
  {
    auto w = make_target_writer(TargetFormat::kSam, without,
                                d.genome.header(), false);
    w->write(d.records[0]);
    w->close();
  }
  EXPECT_EQ(read_file(with),
            d.genome.header().text() + read_file(without));
}

}  // namespace
}  // namespace ngsx::core
