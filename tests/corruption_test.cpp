// Failure-injection suite: randomly corrupted or truncated input files
// must produce ngsx::Error exceptions (or, for benign flips, still parse)
// — never crashes, hangs, or silent garbage propagation into unrelated
// state. Exercises the defensive paths of every binary reader.

#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "formats/bai.h"
#include "formats/bam.h"
#include "formats/bamx.h"
#include "formats/bamxz.h"
#include "formats/sam.h"
#include "simdata/readsim.h"
#include "util/iopolicy.h"
#include "util/rng.h"
#include "util/tempdir.h"

namespace ngsx {
namespace {

using sam::AlignmentRecord;

/// Builds one of each file format from the same simulated dataset.
struct Corpus {
  TempDir tmp;
  std::string sam_path;
  std::string bam_path;
  std::string bamx_path;
  std::string baix_path;
  std::string bamxz_path;
  std::string bai_path;

  Corpus() {
    auto genome = simdata::ReferenceGenome::simulate(
        simdata::mouse_like_references(200000), 71);
    simdata::ReadSimConfig cfg;
    cfg.seed = 71;
    auto records = simdata::simulate_alignments(genome, 150, cfg);
    sam_path = tmp.file("c.sam");
    bam_path = tmp.file("c.bam");
    bamx_path = tmp.file("c.bamx");
    baix_path = tmp.file("c.baix");
    bamxz_path = tmp.file("c.bamxz");
    bai_path = tmp.file("c.bam.bai");
    {
      sam::SamFileWriter w(sam_path, genome.header());
      for (const auto& r : records) {
        w.write(r);
      }
      w.close();
    }
    {
      bam::BamFileWriter w(bam_path, genome.header());
      for (const auto& r : records) {
        w.write(r);
      }
      w.close();
    }
    bamx::BamxLayout layout;
    for (const auto& r : records) {
      layout.accommodate(r);
    }
    {
      bamx::BamxWriter w(bamx_path, genome.header(), layout);
      for (const auto& r : records) {
        w.write(r);
      }
      w.close();
    }
    {
      bamx::BamxReader reader(bamx_path);
      bamx::BaixIndex::build(reader).save(baix_path);
    }
    {
      bamxz::BamxzWriter w(bamxz_path, genome.header(), layout, 32);
      for (const auto& r : records) {
        w.write(r);
      }
      w.close();
    }
    bai::BaiIndex::build(bam_path).save(bai_path);
  }
};

Corpus& corpus() {
  static Corpus c;
  return c;
}

/// Writes a copy of `path` with `flips` random byte corruptions.
std::string corrupt_copy(const std::string& path, uint64_t seed, int flips,
                         const std::string& out_path) {
  std::string data = read_file(path);
  Rng rng(seed);
  for (int i = 0; i < flips && !data.empty(); ++i) {
    size_t at = static_cast<size_t>(rng.below(data.size()));
    data[at] = static_cast<char>(data[at] ^ (1 + rng.below(255)));
  }
  write_file(out_path, data);
  return out_path;
}

/// Writes a truncated copy of `path`.
std::string truncate_copy(const std::string& path, uint64_t seed,
                          const std::string& out_path) {
  std::string data = read_file(path);
  Rng rng(seed);
  size_t keep = static_cast<size_t>(rng.below(data.size()));
  write_file(out_path, data.substr(0, keep));
  return out_path;
}

class CorruptionSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorruptionSeeds, BamFlipsNeverCrash) {
  Corpus& c = corpus();
  std::string path = corrupt_copy(c.bam_path, GetParam(), 3,
                                  c.tmp.file("x.bam"));
  try {
    bam::BamFileReader reader(path);
    AlignmentRecord rec;
    int n = 0;
    while (reader.next(rec) && n < 10000) {
      ++n;  // benign flips may still parse; that's acceptable
    }
  } catch (const Error&) {
    // Detected corruption: the expected outcome.
  }
}

TEST_P(CorruptionSeeds, BamTruncationsNeverCrash) {
  Corpus& c = corpus();
  std::string path =
      truncate_copy(c.bam_path, GetParam() + 100, c.tmp.file("t.bam"));
  try {
    bam::BamFileReader reader(path);
    AlignmentRecord rec;
    while (reader.next(rec)) {
    }
  } catch (const Error&) {
  }
}

TEST_P(CorruptionSeeds, BamParallelDecodeFlipsMatchSequential) {
  // Decoding a corrupt BAM through the parallel BGZF reader must reach
  // the same outcome as the sequential one: the same number of records
  // parsed before either the same Error or a clean stop — and it must
  // never hang a worker or crash.
  Corpus& c = corpus();
  std::string path = corrupt_copy(c.bam_path, GetParam(), 3,
                                  c.tmp.file("p.bam"));
  auto outcome = [&](int decode_threads) {
    int n = 0;
    try {
      bam::BamFileReader reader(path, decode_threads);
      AlignmentRecord rec;
      while (reader.next(rec) && n < 10000) {
        ++n;
      }
    } catch (const Error& e) {
      return std::make_pair(n, std::string(e.what()));
    }
    return std::make_pair(n, std::string());
  };
  auto sequential = outcome(1);
  auto parallel = outcome(4);
  EXPECT_EQ(parallel.first, sequential.first);
  // Framing corruption can surface as a scanner error in one reader and
  // an inflate error in the other (ordering race); both must error.
  EXPECT_EQ(parallel.second.empty(), sequential.second.empty());
}

TEST_P(CorruptionSeeds, BamParallelDecodeTruncationsMatchSequential) {
  Corpus& c = corpus();
  std::string path =
      truncate_copy(c.bam_path, GetParam() + 100, c.tmp.file("pt.bam"));
  auto outcome = [&](int decode_threads) {
    int n = 0;
    try {
      bam::BamFileReader reader(path, decode_threads);
      AlignmentRecord rec;
      while (reader.next(rec)) {
        ++n;
      }
    } catch (const Error& e) {
      return std::make_pair(n, std::string(e.what()));
    }
    return std::make_pair(n, std::string());
  };
  auto sequential = outcome(1);
  auto parallel = outcome(4);
  EXPECT_EQ(parallel.first, sequential.first);
  // Truncation is framing-visible at one offset: message parity holds.
  EXPECT_EQ(parallel.second, sequential.second);
}

TEST_P(CorruptionSeeds, BamxFlipsNeverCrash) {
  Corpus& c = corpus();
  std::string path = corrupt_copy(c.bamx_path, GetParam() + 200, 3,
                                  c.tmp.file("x.bamx"));
  try {
    bamx::BamxReader reader(path);
    AlignmentRecord rec;
    for (uint64_t i = 0; i < reader.num_records(); ++i) {
      reader.read(i, rec);
    }
  } catch (const Error&) {
  }
}

TEST_P(CorruptionSeeds, BamxTruncationsNeverCrash) {
  Corpus& c = corpus();
  std::string path =
      truncate_copy(c.bamx_path, GetParam() + 300, c.tmp.file("t.bamx"));
  try {
    bamx::BamxReader reader(path);
    AlignmentRecord rec;
    for (uint64_t i = 0; i < reader.num_records(); ++i) {
      reader.read(i, rec);
    }
  } catch (const Error&) {
  }
}

TEST_P(CorruptionSeeds, BamxzFlipsNeverCrash) {
  Corpus& c = corpus();
  std::string path = corrupt_copy(c.bamxz_path, GetParam() + 400, 3,
                                  c.tmp.file("x.bamxz"));
  try {
    bamxz::BamxzReader reader(path);
    AlignmentRecord rec;
    for (uint64_t i = 0; i < reader.num_records(); ++i) {
      reader.read(i, rec);
    }
  } catch (const Error&) {
  }
}

TEST_P(CorruptionSeeds, BaixFlipsNeverCrash) {
  Corpus& c = corpus();
  std::string path = corrupt_copy(c.baix_path, GetParam() + 500, 2,
                                  c.tmp.file("x.baix"));
  try {
    auto index = bamx::BaixIndex::load(path);
    index.query(0, 0, 100000);
  } catch (const Error&) {
  }
}

TEST_P(CorruptionSeeds, BaiFlipsNeverCrash) {
  Corpus& c = corpus();
  std::string path = corrupt_copy(c.bai_path, GetParam() + 600, 2,
                                  c.tmp.file("x.bai"));
  try {
    auto index = bai::BaiIndex::load(path);
    index.query(0, 0, 100000);
  } catch (const Error&) {
  }
}

TEST_P(CorruptionSeeds, SamGarbageLinesNeverCrash) {
  // Random bytes injected into a SAM body: parse errors, not crashes.
  Corpus& c = corpus();
  std::string path = corrupt_copy(c.sam_path, GetParam() + 700, 5,
                                  c.tmp.file("x.sam"));
  try {
    sam::SamFileReader reader(path);
    AlignmentRecord rec;
    while (reader.next(rec)) {
    }
  } catch (const Error&) {
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionSeeds,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Atomic-commit path: killing a writer mid-stream with an injected hard
// fault must leave nothing under the final name (and no staging leak), and
// a clean re-run must reproduce the never-faulted file byte for byte.
// ---------------------------------------------------------------------------

/// Re-derives the corpus dataset (same seeds as Corpus).
std::vector<AlignmentRecord> corpus_records(sam::SamHeader& header_out) {
  auto genome = simdata::ReferenceGenome::simulate(
      simdata::mouse_like_references(200000), 71);
  auto records = simdata::simulate_alignments(
      genome, 150, [] {
        simdata::ReadSimConfig cfg;
        cfg.seed = 71;
        return cfg;
      }());
  header_out = genome.header();
  return records;
}

void expect_no_staging_leak(const std::string& dir) {
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << "leaked staging file: " << entry.path();
  }
}

TEST(AtomicCommit, KilledWritersLeaveNoFinalFileAndRerunIsByteIdentical) {
  Corpus& c = corpus();
  sam::SamHeader header;
  auto records = corpus_records(header);
  bamx::BamxLayout layout;
  for (const auto& r : records) {
    layout.accommodate(r);
  }
  TempDir tmp;

  struct Format {
    const char* name;
    const std::string* reference;  // corpus file with identical bytes
    std::function<void(const std::string&)> write;
  };
  std::vector<Format> formats = {
      {"sam", &c.sam_path,
       [&](const std::string& p) {
         sam::SamFileWriter w(p, header);
         for (const auto& r : records) {
           w.write(r);
         }
         w.close();
       }},
      {"bam", &c.bam_path,
       [&](const std::string& p) {
         bam::BamFileWriter w(p, header);
         for (const auto& r : records) {
           w.write(r);
         }
         w.close();
       }},
      {"bamx", &c.bamx_path,
       [&](const std::string& p) {
         bamx::BamxWriter w(p, header, layout);
         for (const auto& r : records) {
           w.write(r);
         }
         w.close();
       }},
      {"bamxz", &c.bamxz_path,
       [&](const std::string& p) {
         bamxz::BamxzWriter w(p, header, layout, 32);
         for (const auto& r : records) {
           w.write(r);
         }
         w.close();
       }},
  };

  for (const Format& fmt : formats) {
    SCOPED_TRACE(fmt.name);
    const std::string path = tmp.file(std::string("kill.") + fmt.name);
    {
      io::Fault fault;
      fault.op = io::Op::kWrite;
      fault.kind = io::FaultKind::kError;
      io::IoPolicy::instance().inject(path, fault);
      EXPECT_THROW(fmt.write(path), Error);
      io::IoPolicy::instance().clear();
    }
    EXPECT_FALSE(std::filesystem::exists(path))
        << "partial file observable under its final name";
    expect_no_staging_leak(tmp.path());
    // The fault cleared: the identical call now succeeds, byte-identically
    // to the never-faulted corpus file.
    fmt.write(path);
    EXPECT_EQ(read_file(path), read_file(*fmt.reference));
  }
}

TEST(AtomicCommit, EnospcMidStreamRollsBackCompressedWriters) {
  // ENOSPC strikes while compressed payload is moving to the kernel (not
  // at close): larger dataset so BGZF/BAMXZ cross their buffer thresholds.
  sam::SamHeader header;
  auto records = corpus_records(header);
  TempDir tmp;
  const std::string path = tmp.file("enospc.bam");
  {
    io::Fault fault;
    fault.op = io::Op::kWrite;
    fault.kind = io::FaultKind::kEnospc;
    fault.bytes = 512;  // far below the compressed stream size
    io::IoPolicy::instance().inject(path, fault);
    EXPECT_THROW(
        [&] {
          bam::BamFileWriter w(path, header);
          for (int round = 0; round < 50; ++round) {
            for (const auto& r : records) {
              w.write(r);
            }
          }
          w.close();
        }(),
        Error);
    io::IoPolicy::instance().clear();
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  expect_no_staging_leak(tmp.path());
}

TEST(Corruption, TotallyRandomBytesRejectedEverywhere) {
  TempDir tmp;
  Rng rng(9);
  std::string noise(4096, '\0');
  for (auto& ch : noise) {
    ch = static_cast<char>(rng.below(256));
  }
  std::string path = tmp.file("noise.bin");
  write_file(path, noise);
  EXPECT_THROW(bam::BamFileReader r(path), Error);
  EXPECT_THROW(bamx::BamxReader r(path), Error);
  EXPECT_THROW(bamxz::BamxzReader r(path), Error);
  EXPECT_THROW(bamx::BaixIndex::load(path), Error);
  EXPECT_THROW(bai::BaiIndex::load(path), Error);
}

}  // namespace
}  // namespace ngsx
