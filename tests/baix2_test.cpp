// Tests for the BAIX v2 index: overlap queries against a brute-force
// oracle, filters, serialization, and the extended partial conversion +
// parallel histogram construction built on top of it.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/convert.h"
#include "formats/baix2.h"
#include "simdata/readsim.h"
#include "stats/histogram.h"
#include "util/tempdir.h"

namespace ngsx::baix2 {
namespace {

using sam::AlignmentRecord;

struct Fixture {
  TempDir tmp;
  simdata::ReferenceGenome genome;
  std::vector<AlignmentRecord> records;
  std::string bamx_path;
  std::string baix2_path;
  Baix2Index index;

  explicit Fixture(uint64_t pairs = 400, uint64_t seed = 61)
      : genome(simdata::ReferenceGenome::simulate(
            simdata::mouse_like_references(500000), seed)) {
    simdata::ReadSimConfig cfg;
    cfg.seed = seed;
    records = simdata::simulate_alignments(genome, pairs, cfg);
    bamx::BamxLayout layout;
    for (const auto& r : records) {
      layout.accommodate(r);
    }
    bamx_path = tmp.file("d.bamx");
    baix2_path = tmp.file("d.baix2");
    bamx::BamxWriter w(bamx_path, genome.header(), layout);
    for (const auto& r : records) {
      w.write(r);
    }
    w.close();
    core::build_baix2(bamx_path, baix2_path);
    index = Baix2Index::load(baix2_path);
  }

  /// Brute-force oracle.
  std::vector<uint64_t> oracle(int32_t ref, int32_t beg, int32_t end,
                               RegionMode mode, const Filter& f) const {
    std::vector<uint64_t> out;
    for (size_t i = 0; i < records.size(); ++i) {
      const AlignmentRecord& rec = records[i];
      Entry e{rec.ref_id, rec.pos,
              rec.pos >= 0 ? rec.end_pos() : -1, rec.flag, rec.mapq, i};
      if (rec.ref_id != ref) {
        continue;
      }
      bool in_region = mode == RegionMode::kStartWithin
                           ? rec.pos >= beg && rec.pos < end
                           : rec.pos < end && e.end > beg;
      if (in_region && f.matches(e)) {
        out.push_back(i);
      }
    }
    return out;
  }
};

TEST(Baix2, BuildIndexesEveryRecord) {
  Fixture f;
  EXPECT_EQ(f.index.size(), f.records.size());
}

TEST(Baix2, StartWithinMatchesOracle) {
  Fixture f;
  for (auto [beg, end] : std::vector<std::pair<int32_t, int32_t>>{
           {0, 10000}, {5000, 25000}, {0, 1}, {40000, 79000}}) {
    EXPECT_EQ(f.index.query(0, beg, end, RegionMode::kStartWithin),
              f.oracle(0, beg, end, RegionMode::kStartWithin, {}))
        << "[" << beg << "," << end << ")";
  }
}

TEST(Baix2, OverlapMatchesOracle) {
  Fixture f;
  for (auto [beg, end] : std::vector<std::pair<int32_t, int32_t>>{
           {0, 10000}, {5000, 25000}, {0, 1}, {40000, 79000},
           {17, 131}}) {
    EXPECT_EQ(f.index.query(0, beg, end, RegionMode::kOverlap),
              f.oracle(0, beg, end, RegionMode::kOverlap, {}))
        << "[" << beg << "," << end << ")";
  }
}

TEST(Baix2, OverlapFindsStraddlers) {
  // A record starting before the region but overlapping it must be found
  // by kOverlap and missed by kStartWithin.
  Fixture f;
  // Find some mapped record and query a window inside its span.
  const AlignmentRecord* victim = nullptr;
  size_t victim_index = 0;
  for (size_t i = 0; i < f.records.size(); ++i) {
    if (f.records[i].ref_id == 0 && f.records[i].reference_span() > 40) {
      victim = &f.records[i];
      victim_index = i;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  int32_t beg = victim->pos + 20;
  int32_t end = victim->pos + 30;
  auto overlap = f.index.query(0, beg, end, RegionMode::kOverlap);
  auto start_within = f.index.query(0, beg, end, RegionMode::kStartWithin);
  EXPECT_NE(std::find(overlap.begin(), overlap.end(), victim_index),
            overlap.end());
  EXPECT_EQ(std::find(start_within.begin(), start_within.end(), victim_index),
            start_within.end());
}

TEST(Baix2, FiltersMatchOracle) {
  Fixture f;
  Filter mapq_filter;
  mapq_filter.min_mapq = 50;
  Filter strand_filter;
  strand_filter.reverse_strand = true;
  Filter no_dup;
  no_dup.include_duplicates = false;
  for (const Filter& filter : {mapq_filter, strand_filter, no_dup}) {
    EXPECT_EQ(f.index.query(0, 0, 80000, RegionMode::kOverlap, filter),
              f.oracle(0, 0, 80000, RegionMode::kOverlap, filter));
  }
  // Combined.
  Filter combined;
  combined.min_mapq = 40;
  combined.reverse_strand = false;
  combined.include_duplicates = false;
  EXPECT_EQ(f.index.query(0, 0, 80000, RegionMode::kOverlap, combined),
            f.oracle(0, 0, 80000, RegionMode::kOverlap, combined));
}

TEST(Baix2, FiltersActuallyFilter) {
  Fixture f;
  Filter strict;
  strict.min_mapq = 55;
  auto all = f.index.query(0, 0, 80000, RegionMode::kOverlap);
  auto filtered = f.index.query(0, 0, 80000, RegionMode::kOverlap, strict);
  EXPECT_GT(all.size(), filtered.size());
  EXPECT_FALSE(filtered.empty());
}

TEST(Baix2, ResultsAscending) {
  Fixture f;
  auto out = f.index.query(0, 0, 50000, RegionMode::kOverlap);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(Baix2, QueryAllWithUnmapped) {
  Fixture f;
  Filter with_unmapped;
  with_unmapped.include_unmapped = true;
  EXPECT_EQ(f.index.query_all(with_unmapped).size(), f.records.size());
  Filter mapped_only;  // default excludes unmapped
  size_t mapped = 0;
  for (const auto& rec : f.records) {
    mapped += rec.is_unmapped() ? 0 : 1;
  }
  EXPECT_EQ(f.index.query_all(mapped_only).size(), mapped);
}

TEST(Baix2, StartWithinParityWithBaixV1) {
  // The v1 BAIX contract is *start-keyed* (docs/FILEFORMATS.md): a region
  // query selects exactly the alignments starting inside [beg, end). v2's
  // kStartWithin must select the same record set, so the two indexes are
  // interchangeable for the paper's partial-conversion semantics — and any
  // extra records v2's kOverlap returns are precisely the straddlers v1
  // cannot see.
  Fixture f;
  bamx::BaixIndex v1 = bamx::BaixIndex::build(bamx::BamxReader(f.bamx_path));
  for (auto [beg, end] : std::vector<std::pair<int32_t, int32_t>>{
           {0, 500000}, {10000, 60000}, {0, 1}, {250000, 250000}}) {
    auto [first, last] = v1.query(0, beg, end);
    std::vector<uint64_t> v1_records;
    for (size_t i = first; i < last; ++i) {
      v1_records.push_back(v1.entry(i).record_index);
    }
    std::sort(v1_records.begin(), v1_records.end());
    EXPECT_EQ(v1_records, f.index.query(0, beg, end,
                                        RegionMode::kStartWithin))
        << "region [" << beg << ", " << end << ")";
  }
}

TEST(Baix2, OverlapIsStrictSupersetOnStraddledWindow) {
  // A window placed strictly inside some alignment's span: start-keyed
  // selection (v1 and kStartWithin alike) misses the straddler, overlap
  // mode finds it. This is the contract difference --region-mode toggles.
  Fixture f;
  const AlignmentRecord* straddler = nullptr;
  for (const auto& rec : f.records) {
    if (rec.ref_id == 0 && rec.pos >= 0 && rec.end_pos() - rec.pos >= 3) {
      straddler = &rec;
      break;
    }
  }
  ASSERT_NE(straddler, nullptr);
  const int32_t beg = straddler->pos + 1;
  const int32_t end = straddler->pos + 2;
  bamx::BaixIndex v1 = bamx::BaixIndex::build(bamx::BamxReader(f.bamx_path));
  auto [first, last] = v1.query(0, beg, end);
  auto start_within = f.index.query(0, beg, end, RegionMode::kStartWithin);
  auto overlap = f.index.query(0, beg, end, RegionMode::kOverlap);
  EXPECT_EQ(last - first, start_within.size());
  EXPECT_GT(overlap.size(), start_within.size());
  EXPECT_NE(std::find(overlap.begin(), overlap.end(),
                      static_cast<uint64_t>(straddler - f.records.data())),
            overlap.end());
}

TEST(Baix2, SaveLoadRoundTrip) {
  Fixture f;
  std::string copy = f.tmp.file("copy.baix2");
  f.index.save(copy);
  EXPECT_EQ(Baix2Index::load(copy), f.index);
}

TEST(Baix2, LoadBadMagicThrows) {
  TempDir tmp;
  write_file(tmp.file("bad.baix2"), "not an index at all");
  EXPECT_THROW(Baix2Index::load(tmp.file("bad.baix2")), FormatError);
}

TEST(Baix2, EmptyRegion) {
  Fixture f;
  EXPECT_TRUE(f.index.query(0, 500, 500, RegionMode::kOverlap).empty());
  EXPECT_TRUE(f.index.query(99, 0, 1000, RegionMode::kOverlap).empty());
}

// ------------------------------------------------- filtered conversion

TEST(FilteredConversion, MatchesOracleCount) {
  Fixture f;
  core::ConvertOptions options;
  options.format = core::TargetFormat::kBed;
  options.ranks = 4;
  core::Region region{0, 10000, 60000};
  Filter filter;
  filter.min_mapq = 45;
  filter.include_duplicates = false;
  auto stats = core::convert_bamx_filtered(
      f.bamx_path, f.baix2_path, f.tmp.subdir("out"), options, region,
      RegionMode::kOverlap, filter);
  auto expect =
      f.oracle(0, region.begin, region.end, RegionMode::kOverlap, filter);
  EXPECT_EQ(stats.records_in, expect.size());
  EXPECT_EQ(stats.records_out, expect.size());  // all mapped -> all emitted
}

TEST(FilteredConversion, OutputIdenticalAcrossRanks) {
  Fixture f;
  core::Region region{0, 0, 70000};
  Filter filter;
  filter.reverse_strand = true;
  std::string reference_output;
  for (int ranks : {1, 3, 8}) {
    core::ConvertOptions options;
    options.format = core::TargetFormat::kBed;
    options.ranks = ranks;
    auto stats = core::convert_bamx_filtered(
        f.bamx_path, f.baix2_path,
        f.tmp.subdir("r" + std::to_string(ranks)), options, region,
        RegionMode::kOverlap, filter);
    std::string all;
    for (const auto& path : stats.outputs) {
      all += read_file(path);
    }
    if (ranks == 1) {
      reference_output = all;
    } else {
      EXPECT_EQ(all, reference_output) << ranks << " ranks";
    }
  }
  EXPECT_FALSE(reference_output.empty());
  // Strand filter respected in the output itself.
  size_t pos = 0;
  while ((pos = reference_output.find('\n', pos)) != std::string::npos) {
    ++pos;
  }
  for (size_t i = 0; i + 1 < reference_output.size(); ++i) {
    if (reference_output[i] == '\t' && reference_output[i + 1] == '+') {
      FAIL() << "forward-strand row leaked through the reverse filter";
    }
  }
}

// ------------------------------------------------- parallel histogram

TEST(ParallelHistogram, MatchesSequentialBuilders) {
  Fixture f;
  auto sequential = [&] {
    stats::CoverageHistogram h(f.genome.header(), 25);
    for (const auto& rec : f.records) {
      h.add(rec);
    }
    return h.flatten();
  }();
  for (int ranks : {1, 2, 5, 8}) {
    auto parallel =
        stats::histogram_from_bamx_parallel(f.bamx_path, 25, ranks);
    EXPECT_EQ(parallel.flatten(), sequential) << ranks << " ranks";
  }
}

}  // namespace
}  // namespace ngsx::baix2
