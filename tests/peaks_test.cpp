// Tests for enriched-region calling (stats/peaks).

#include <gtest/gtest.h>

#include "simdata/histsim.h"
#include "stats/peaks.h"
#include "util/common.h"

namespace ngsx::stats {
namespace {

SimulationSet flat_sims(size_t bins, size_t b, double value) {
  return SimulationSet(b, std::vector<double>(bins, value));
}

TEST(CallRegions, FindsObviousPeak) {
  // Background 0 against sims at 5; a block raised to 100 is the peak.
  std::vector<double> hist(100, 0.0);
  for (size_t i = 40; i < 50; ++i) {
    hist[i] = 100.0;
  }
  auto sims = flat_sims(100, 8, 5.0);
  // p_i = 8 off-peak (0 <= 5 always), 0 on-peak. Threshold 0 selects peaks.
  auto regions = call_enriched_regions(hist, sims, /*p_t=*/0);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].begin_bin, 40u);
  EXPECT_EQ(regions[0].end_bin, 50u);
  EXPECT_DOUBLE_EQ(regions[0].max_value, 100.0);
  EXPECT_DOUBLE_EQ(regions[0].mean_value, 100.0);
}

TEST(CallRegions, MinBinsDropsBlips) {
  std::vector<double> hist(100, 0.0);
  hist[10] = 100.0;                      // 1-bin blip
  for (size_t i = 60; i < 70; ++i) {     // real peak
    hist[i] = 100.0;
  }
  auto sims = flat_sims(100, 4, 5.0);
  auto regions = call_enriched_regions(hist, sims, 0, /*min_bins=*/3);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].begin_bin, 60u);
}

TEST(CallRegions, MergeGapBridgesHoles) {
  std::vector<double> hist(100, 0.0);
  for (size_t i = 20; i < 30; ++i) {
    hist[i] = 100.0;
  }
  hist[25] = 0.0;  // one-bin hole
  auto sims = flat_sims(100, 4, 5.0);
  auto split = call_enriched_regions(hist, sims, 0, 1, /*merge_gap=*/0);
  EXPECT_EQ(split.size(), 2u);
  auto merged = call_enriched_regions(hist, sims, 0, 1, /*merge_gap=*/1);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].begin_bin, 20u);
  EXPECT_EQ(merged[0].end_bin, 30u);
}

TEST(CallRegions, NoPeaksNoRegions) {
  std::vector<double> hist(50, 0.0);
  auto sims = flat_sims(50, 4, 5.0);
  EXPECT_TRUE(call_enriched_regions(hist, sims, 0).empty());
}

TEST(CallRegions, RegionAtArrayEdges) {
  std::vector<double> hist(20, 0.0);
  hist[0] = hist[1] = 100.0;
  hist[18] = hist[19] = 100.0;
  auto sims = flat_sims(20, 4, 5.0);
  auto regions = call_enriched_regions(hist, sims, 0, 2);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].begin_bin, 0u);
  EXPECT_EQ(regions[1].end_bin, 20u);
}

TEST(CallRegions, MismatchedSimsRejected) {
  std::vector<double> hist(10, 0.0);
  SimulationSet bad = {std::vector<double>(9, 1.0)};
  EXPECT_THROW(call_enriched_regions(hist, bad, 0), Error);
  EXPECT_THROW(call_enriched_regions(hist, {}, 0), Error);
}

TEST(CallPeaks, EndToEndRecoversPlantedPeaks) {
  simdata::HistSimConfig cfg;
  cfg.seed = 5;
  cfg.peak_density = 0.0;  // we plant our own, deterministic positions
  auto hist = simdata::simulate_histogram(4000, cfg);
  const size_t centers[] = {500, 1500, 2500, 3500};
  for (size_t c : centers) {
    for (size_t i = c - 20; i < c + 20; ++i) {
      hist[i] += 60.0;
    }
  }
  auto sims = simdata::simulate_null_batch(4000, 20, cfg.background_rate, 5);

  PeakCallParams params;
  params.ranks = 4;
  params.target_fdr = 0.05;
  PeakCallResult result = call_peaks(hist, sims, params);
  ASSERT_GE(result.p_t, 0);
  EXPECT_LE(result.fdr, 0.05);
  ASSERT_EQ(result.regions.size(), 4u);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_LE(result.regions[k].begin_bin, centers[k] - 10);
    EXPECT_GE(result.regions[k].end_bin, centers[k] + 10);
  }
}

TEST(CallPeaks, ParallelAndSequentialAgree) {
  simdata::HistSimConfig cfg;
  cfg.seed = 6;
  auto hist = simdata::simulate_histogram(2000, cfg);
  auto sims = simdata::simulate_null_batch(2000, 12, cfg.background_rate, 6);
  PeakCallParams seq_params;
  seq_params.ranks = 1;
  PeakCallParams par_params;
  par_params.ranks = 6;
  auto a = call_peaks(hist, sims, seq_params);
  auto b = call_peaks(hist, sims, par_params);
  EXPECT_EQ(a.p_t, b.p_t);
  EXPECT_DOUBLE_EQ(a.fdr, b.fdr);
  EXPECT_EQ(a.denoised, b.denoised);
  EXPECT_EQ(a.regions, b.regions);
}

TEST(CallPeaks, NoDenoiseOption) {
  std::vector<double> hist(100, 0.0);
  for (size_t i = 40; i < 50; ++i) {
    hist[i] = 100.0;
  }
  auto sims = flat_sims(100, 8, 5.0);
  PeakCallParams params;
  params.denoise = false;
  params.min_bins = 1;
  params.merge_gap = 0;
  auto result = call_peaks(hist, sims, params);
  ASSERT_GE(result.p_t, 0);
  EXPECT_EQ(result.denoised, hist);
  ASSERT_EQ(result.regions.size(), 1u);
}

TEST(CallPeaks, ImpossibleTargetReturnsNone) {
  // Histogram everywhere below the nulls: everything "significant" at
  // lenient thresholds, nothing meets an FDR of ~0.
  std::vector<double> hist(100, 0.0);
  auto sims = flat_sims(100, 8, 5.0);
  PeakCallParams params;
  params.denoise = false;
  params.target_fdr = 1e-9;
  auto result = call_peaks(hist, sims, params);
  // All bins have p_i = 8; no threshold has any discoveries until p_t=8,
  // where all bins are discovered and every null bin is a false peak.
  EXPECT_EQ(result.p_t, -1);
  EXPECT_TRUE(result.regions.empty());
}

}  // namespace
}  // namespace ngsx::stats
