// Unit tests for ngsx/util: binary I/O, string utilities, RNG, CLI parsing,
// temp directories.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "util/binio.h"
#include "util/cli.h"
#include "util/common.h"
#include "util/rng.h"
#include "util/strutil.h"
#include "util/tempdir.h"

namespace ngsx {
namespace {

namespace fs = std::filesystem;

// ----------------------------------------------------------------- binio

TEST(BinIo, PutGetRoundTripIntegers) {
  std::string buf;
  binio::put_le<uint8_t>(buf, 0xAB);
  binio::put_le<uint16_t>(buf, 0xBEEF);
  binio::put_le<int32_t>(buf, -123456);
  binio::put_le<uint64_t>(buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(buf.size(), 1 + 2 + 4 + 8u);
  EXPECT_EQ(binio::get_le<uint8_t>(buf, 0), 0xAB);
  EXPECT_EQ(binio::get_le<uint16_t>(buf, 1), 0xBEEF);
  EXPECT_EQ(binio::get_le<int32_t>(buf, 3), -123456);
  EXPECT_EQ(binio::get_le<uint64_t>(buf, 7), 0x0123456789ABCDEFull);
}

TEST(BinIo, LittleEndianByteOrder) {
  std::string buf;
  binio::put_le<uint32_t>(buf, 0x04030201);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 1);
  EXPECT_EQ(static_cast<uint8_t>(buf[1]), 2);
  EXPECT_EQ(static_cast<uint8_t>(buf[2]), 3);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 4);
}

TEST(BinIo, GetOutOfRangeThrows) {
  std::string buf = "ab";
  EXPECT_THROW(binio::get_le<uint32_t>(buf, 0), FormatError);
  EXPECT_THROW(binio::get_le<uint8_t>(buf, 2), FormatError);
}

TEST(BinIo, PokePatchesInPlace) {
  std::string buf(8, '\0');
  binio::poke_le<uint32_t>(buf, 2, 0xCAFEBABE);
  EXPECT_EQ(binio::get_le<uint32_t>(buf, 2), 0xCAFEBABE);
}

TEST(BinIo, FloatRoundTrip) {
  std::string buf;
  binio::put_le<float>(buf, 3.25f);
  binio::put_le<double>(buf, -1e100);
  EXPECT_FLOAT_EQ(binio::get_le<float>(buf, 0), 3.25f);
  EXPECT_DOUBLE_EQ(binio::get_le<double>(buf, 4), -1e100);
}

TEST(ByteReader, SequentialReads) {
  std::string buf;
  binio::put_le<int32_t>(buf, 7);
  buf += "name";
  buf += '\0';
  binio::put_le<uint16_t>(buf, 99);
  ByteReader r(buf);
  EXPECT_EQ(r.read<int32_t>(), 7);
  EXPECT_EQ(r.read_cstr(), "name");
  EXPECT_EQ(r.read<uint16_t>(), 99);
  EXPECT_TRUE(r.eof());
}

TEST(ByteReader, TruncatedThrows) {
  std::string buf = "ab";
  ByteReader r(buf);
  EXPECT_THROW(r.read<uint32_t>(), FormatError);
}

TEST(ByteReader, UnterminatedCstrThrows) {
  std::string buf = "abc";
  ByteReader r(buf);
  EXPECT_THROW(r.read_cstr(), FormatError);
}

TEST(ByteReader, SkipAndRemaining) {
  std::string buf = "abcdef";
  ByteReader r(buf);
  r.skip(2);
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_EQ(r.read_bytes(2), "cd");
  EXPECT_THROW(r.skip(10), FormatError);
}

// --------------------------------------------------------------- files

TEST(Files, WriteReadRoundTrip) {
  TempDir tmp;
  std::string path = tmp.file("x.bin");
  std::string data = "hello";
  data += '\0';
  data += "world\xff";
  write_file(path, data);
  EXPECT_EQ(read_file(path), data);
  EXPECT_EQ(file_size(path), data.size());
}

TEST(Files, InputFilePread) {
  TempDir tmp;
  std::string path = tmp.file("x.bin");
  write_file(path, "0123456789");
  InputFile in(path);
  EXPECT_EQ(in.size(), 10u);
  EXPECT_EQ(in.read_at(3, 4), "3456");
  EXPECT_EQ(in.read_at(8, 100), "89");  // short at EOF
  EXPECT_EQ(in.read_at(100, 10), "");
  char buf[4];
  in.pread_exact(buf, 4, 0);
  EXPECT_EQ(std::string(buf, 4), "0123");
  EXPECT_THROW(in.pread_exact(buf, 4, 8), IoError);
}

TEST(Files, OpenMissingFileThrows) {
  EXPECT_THROW(InputFile("/nonexistent/definitely/missing"), IoError);
  EXPECT_THROW(file_size("/nonexistent/definitely/missing"), IoError);
}

TEST(Files, OutputFileBuffersAndFlushes) {
  TempDir tmp;
  std::string path = tmp.file("out.bin");
  {
    OutputFile out(path, /*buffer_bytes=*/16);
    for (int i = 0; i < 100; ++i) {
      out.write("abcd");
    }
    EXPECT_EQ(out.bytes_written(), 400u);
    out.close();
  }
  EXPECT_EQ(file_size(path), 400u);
}

TEST(Files, OutputFileLargeWriteBypassesBuffer) {
  TempDir tmp;
  std::string path = tmp.file("big.bin");
  std::string big(1 << 20, 'z');
  {
    OutputFile out(path, /*buffer_bytes=*/1024);
    out.write("small");
    out.write(big);
    out.close();
  }
  std::string all = read_file(path);
  EXPECT_EQ(all.size(), 5 + big.size());
  EXPECT_EQ(all.substr(0, 5), "small");
}

TEST(Files, InputFileMoveTransfersOwnership) {
  TempDir tmp;
  std::string path = tmp.file("m.bin");
  write_file(path, "abc");
  InputFile a(path);
  InputFile b = std::move(a);
  EXPECT_EQ(b.read_at(0, 3), "abc");
}

// --------------------------------------------------------------- strutil

TEST(StrUtil, SplitBasic) {
  auto f = strutil::split("a\tb\tc", '\t');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(StrUtil, SplitEmptyFields) {
  auto f = strutil::split("\ta\t\t", '\t');
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[1], "a");
  EXPECT_EQ(f[2], "");
  EXPECT_EQ(f[3], "");
}

TEST(StrUtil, SplitSingleField) {
  auto f = strutil::split("abc", '\t');
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "abc");
}

TEST(StrUtil, ParseIntValid) {
  EXPECT_EQ(strutil::parse_int<int>("42", "x"), 42);
  EXPECT_EQ(strutil::parse_int<int64_t>("-9000000000", "x"), -9000000000LL);
  EXPECT_EQ(strutil::parse_int<uint8_t>("255", "x"), 255);
}

TEST(StrUtil, ParseIntInvalidThrows) {
  EXPECT_THROW(strutil::parse_int<int>("", "x"), FormatError);
  EXPECT_THROW(strutil::parse_int<int>("12a", "x"), FormatError);
  EXPECT_THROW(strutil::parse_int<uint8_t>("256", "x"), FormatError);
  EXPECT_THROW(strutil::parse_int<int>("4.5", "x"), FormatError);
}

TEST(StrUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(strutil::parse_double("2.5", "x"), 2.5);
  EXPECT_DOUBLE_EQ(strutil::parse_double("-1e3", "x"), -1000.0);
  EXPECT_THROW(strutil::parse_double("nope", "x"), FormatError);
}

TEST(StrUtil, AppendInt) {
  std::string s = "v=";
  strutil::append_int(s, -42);
  EXPECT_EQ(s, "v=-42");
}

TEST(StrUtil, AppendDoubleTrimsIntegers) {
  std::string s;
  strutil::append_double(s, 3.0);
  EXPECT_EQ(s, "3");
  s.clear();
  strutil::append_double(s, 2.5);
  EXPECT_EQ(s, "2.5");
}

TEST(StrUtil, Trim) {
  EXPECT_EQ(strutil::trim("  a b \r\n"), "a b");
  EXPECT_EQ(strutil::trim(""), "");
  EXPECT_EQ(strutil::trim(" \t "), "");
}

TEST(StrUtil, StartsEndsWith) {
  EXPECT_TRUE(strutil::starts_with("chr10", "chr"));
  EXPECT_FALSE(strutil::starts_with("ch", "chr"));
  EXPECT_TRUE(strutil::ends_with("file.sam", ".sam"));
  EXPECT_FALSE(strutil::ends_with("sam", ".sam"));
}

TEST(StrUtil, JsonEscape) {
  std::string s;
  strutil::append_json_escaped(s, "a\"b\\c\nd\te");
  EXPECT_EQ(s, "a\\\"b\\\\c\\nd\\te");
  s.clear();
  strutil::append_json_escaped(s, std::string_view("\x01", 1));
  EXPECT_EQ(s, "\\u0001");
}

// ------------------------------------------------------------------- rng

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(1), 0u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, PoissonMean) {
  Rng rng(13);
  for (double lambda : {0.5, 4.0, 50.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.poisson(lambda));
    }
    EXPECT_NEAR(sum / n, lambda, lambda * 0.1 + 0.1);
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

// ------------------------------------------------------------------- cli

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--n=5", "--name", "x",
                        "pos1", "--f=2.5", "--toggle"};
  CliArgs args(7, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 0), 5);
  EXPECT_EQ(args.get("name", ""), "x");
  EXPECT_TRUE(args.get_bool("toggle", false));
  EXPECT_DOUBLE_EQ(args.get_double("f", 0), 2.5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, BadBoolThrows) {
  const char* argv[] = {"prog", "--flag=maybe"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_THROW(args.get_bool("flag", false), UsageError);
}

// --------------------------------------------------------------- tempdir

TEST(TempDir, CreatesAndRemoves) {
  std::string path;
  {
    TempDir tmp("ngsx-test");
    path = tmp.path();
    EXPECT_TRUE(fs::exists(path));
    write_file(tmp.file("a.txt"), "x");
    std::string sub = tmp.subdir("nested/deep");
    EXPECT_TRUE(fs::exists(sub));
  }
  EXPECT_FALSE(fs::exists(path));
}

TEST(TempDir, UniquePaths) {
  TempDir a;
  TempDir b;
  EXPECT_NE(a.path(), b.path());
}

// ------------------------------------------------------------- NGSX_CHECK

TEST(Check, ThrowsWithContext) {
  try {
    NGSX_CHECK_MSG(false, "context message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ngsx
