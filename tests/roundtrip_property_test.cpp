// Property suite: randomized records must survive every codec in the
// repository unchanged — SAM text, BAM, BAMX, BAMXZ — individually and
// chained. The generator (tests/testutil.h) produces degenerate and
// extreme field combinations the simulator never emits.

#include <gtest/gtest.h>

#include <filesystem>

#include "formats/bam.h"
#include "formats/bamx.h"
#include "formats/bamxz.h"
#include "formats/sam.h"
#include "testutil.h"
#include "util/iopolicy.h"
#include "util/tempdir.h"

namespace ngsx {
namespace {

using sam::AlignmentRecord;
using sam::SamHeader;

SamHeader property_header() {
  return SamHeader::from_references(
      {{"chr1", 200000}, {"chr2", 90000}, {"weird.name-1", 512}});
}

class RoundTripSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripSeeds, SamTextCodec) {
  SamHeader header = property_header();
  Rng rng(GetParam());
  std::string line;
  AlignmentRecord back;
  for (int i = 0; i < 200; ++i) {
    AlignmentRecord rec = testutil::random_record(rng, header);
    line.clear();
    sam::format_record(rec, header, line);
    sam::parse_record(line, header, back);
    ASSERT_EQ(back, rec) << "seed " << GetParam() << " record " << i
                         << "\nline: " << line;
  }
}

TEST_P(RoundTripSeeds, BamCodec) {
  SamHeader header = property_header();
  Rng rng(GetParam() + 1000);
  std::string buf;
  AlignmentRecord back;
  for (int i = 0; i < 200; ++i) {
    AlignmentRecord rec = testutil::random_record(rng, header);
    buf.clear();
    bam::encode_record(rec, buf);
    bam::decode_record(std::string_view(buf).substr(4), back);
    ASSERT_EQ(back, rec) << "seed " << GetParam() << " record " << i;
  }
}

TEST_P(RoundTripSeeds, BamxCodec) {
  SamHeader header = property_header();
  Rng rng(GetParam() + 2000);
  std::vector<AlignmentRecord> records;
  bamx::BamxLayout layout;
  for (int i = 0; i < 150; ++i) {
    records.push_back(testutil::random_record(rng, header));
    layout.accommodate(records.back());
  }
  std::string buf;
  AlignmentRecord back;
  for (size_t i = 0; i < records.size(); ++i) {
    buf.clear();
    bamx::encode_record(records[i], layout, buf);
    bamx::decode_record(buf, layout, back);
    ASSERT_EQ(back, records[i]) << "seed " << GetParam() << " record " << i;
  }
}

TEST_P(RoundTripSeeds, ChainedSamBamBamxFiles) {
  // SAM file -> parse -> BAM file -> read -> BAMX file -> read: identical.
  SamHeader header = property_header();
  Rng rng(GetParam() + 3000);
  std::vector<AlignmentRecord> records;
  for (int i = 0; i < 120; ++i) {
    records.push_back(testutil::random_record(rng, header));
  }
  TempDir tmp;

  // SAM leg.
  {
    sam::SamFileWriter w(tmp.file("a.sam"), header);
    for (const auto& r : records) {
      w.write(r);
    }
    w.close();
  }
  std::vector<AlignmentRecord> from_sam;
  {
    sam::SamFileReader r(tmp.file("a.sam"));
    AlignmentRecord rec;
    while (r.next(rec)) {
      from_sam.push_back(rec);
    }
  }
  ASSERT_EQ(from_sam, records);

  // BAM leg.
  {
    bam::BamFileWriter w(tmp.file("a.bam"), header);
    for (const auto& r : from_sam) {
      w.write(r);
    }
    w.close();
  }
  std::vector<AlignmentRecord> from_bam;
  {
    bam::BamFileReader r(tmp.file("a.bam"));
    AlignmentRecord rec;
    while (r.next(rec)) {
      from_bam.push_back(rec);
    }
  }
  ASSERT_EQ(from_bam, records);

  // BAMX leg.
  bamx::BamxLayout layout;
  for (const auto& r : from_bam) {
    layout.accommodate(r);
  }
  {
    bamx::BamxWriter w(tmp.file("a.bamx"), header, layout);
    for (const auto& r : from_bam) {
      w.write(r);
    }
    w.close();
  }
  bamx::BamxReader r(tmp.file("a.bamx"));
  ASSERT_EQ(r.num_records(), records.size());
  AlignmentRecord rec;
  for (size_t i = 0; i < records.size(); ++i) {
    r.read(i, rec);
    ASSERT_EQ(rec, records[i]) << "record " << i;
  }
}

TEST_P(RoundTripSeeds, BamFileParallelDecode) {
  // The same BAM file read with 1, 2, and 8 BGZF decode threads must
  // yield identical records and identical per-record virtual offsets —
  // including after seeking back to a previously told offset.
  SamHeader header = property_header();
  Rng rng(GetParam() + 5000);
  std::vector<AlignmentRecord> records;
  for (int i = 0; i < 200; ++i) {
    records.push_back(testutil::random_record(rng, header));
  }
  TempDir tmp;
  {
    bam::BamFileWriter w(tmp.file("p.bam"), header);
    for (const auto& r : records) {
      w.write(r);
    }
    w.close();
  }

  std::vector<uint64_t> seq_voffsets;
  {
    bam::BamFileReader r(tmp.file("p.bam"), /*decode_threads=*/1);
    AlignmentRecord rec;
    size_t i = 0;
    while (seq_voffsets.push_back(r.tell()), r.next(rec)) {
      ASSERT_EQ(rec, records[i]) << "record " << i;
      ++i;
    }
    ASSERT_EQ(i, records.size());
  }

  for (int threads : {2, 8}) {
    bam::BamFileReader r(tmp.file("p.bam"), threads);
    AlignmentRecord rec;
    for (size_t i = 0; i < records.size(); ++i) {
      ASSERT_EQ(r.tell(), seq_voffsets[i]) << "threads " << threads;
      ASSERT_TRUE(r.next(rec));
      ASSERT_EQ(rec, records[i]) << "threads " << threads << " record " << i;
    }
    ASSERT_FALSE(r.next(rec));
    // Random re-reads through the collected offsets.
    Rng order(GetParam() + 6000 + static_cast<uint64_t>(threads));
    for (int probe = 0; probe < 25; ++probe) {
      size_t i = static_cast<size_t>(order.below(records.size()));
      r.seek(seq_voffsets[i]);
      ASSERT_TRUE(r.next(rec));
      ASSERT_EQ(rec, records[i])
          << "threads " << threads << " probe of record " << i;
    }
  }
}

TEST_P(RoundTripSeeds, BamxzFile) {
  SamHeader header = property_header();
  Rng rng(GetParam() + 4000);
  std::vector<AlignmentRecord> records;
  bamx::BamxLayout layout;
  for (int i = 0; i < 300; ++i) {
    records.push_back(testutil::random_record(rng, header));
    layout.accommodate(records.back());
  }
  TempDir tmp;
  {
    // Small blocks so the file has several.
    bamxz::BamxzWriter w(tmp.file("a.bamxz"), header, layout,
                         /*records_per_block=*/64);
    for (const auto& r : records) {
      w.write(r);
    }
    w.close();
  }
  bamxz::BamxzReader r(tmp.file("a.bamxz"));
  ASSERT_EQ(r.num_records(), records.size());
  EXPECT_EQ(r.num_blocks(), (records.size() + 63) / 64);
  AlignmentRecord rec;
  // Random access across block boundaries, in scrambled order.
  for (size_t step = 0; step < records.size(); ++step) {
    size_t i = (step * 89) % records.size();
    r.read(i, rec);
    ASSERT_EQ(rec, records[i]) << "record " << i;
  }
}

TEST_P(RoundTripSeeds, AtomicCommitKilledWriterRerunsByteIdentical) {
  // Property over random datasets: kill the BAMX writer's commit with an
  // injected hard fault (the faulted operation rotates with the seed),
  // verify nothing is observable under the final name, then re-run and
  // require the exact bytes of a never-faulted write.
  SamHeader header = property_header();
  Rng rng(GetParam() + 7000);
  std::vector<AlignmentRecord> records;
  bamx::BamxLayout layout;
  for (int i = 0; i < 150; ++i) {
    records.push_back(testutil::random_record(rng, header));
    layout.accommodate(records.back());
  }
  TempDir tmp;
  auto write_all = [&](const std::string& path) {
    bamx::BamxWriter w(path, header, layout);
    for (const auto& r : records) {
      w.write(r);
    }
    w.close();
  };

  const std::string clean = tmp.file("clean.bamx");
  write_all(clean);
  const std::string reference = read_file(clean);

  const io::Op ops[] = {io::Op::kWrite, io::Op::kFsync, io::Op::kClose,
                        io::Op::kRename};
  const std::string path = tmp.file("killed.bamx");
  {
    io::Fault fault;
    fault.op = ops[GetParam() % 4];
    fault.kind = io::FaultKind::kError;
    io::IoPolicy::instance().inject(path, fault);
    EXPECT_THROW(write_all(path), IoError);
    io::IoPolicy::instance().clear();
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  for (const auto& entry :
       std::filesystem::directory_iterator(tmp.path())) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << "leaked staging file: " << entry.path();
  }
  write_all(path);
  EXPECT_EQ(read_file(path), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ngsx
