// Tests for the BGZF block-compression codec: wire format, virtual
// offsets, streaming reader/writer, corruption detection.

#include <gtest/gtest.h>

#include "formats/bgzf.h"
#include "util/rng.h"
#include "util/tempdir.h"

namespace ngsx::bgzf {
namespace {

std::string random_payload(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string s(n, '\0');
  for (auto& c : s) {
    c = static_cast<char>(rng.below(256));
  }
  return s;
}

// ------------------------------------------------------------ block codec

TEST(BgzfBlock, CompressDecompressRoundTrip) {
  for (size_t n : {0u, 1u, 100u, 65000u}) {
    std::string input = random_payload(n, n + 1);
    std::string block;
    compress_block(input, block);
    EXPECT_EQ(peek_block_size(block.substr(0, 18)), block.size());
    std::string out;
    EXPECT_EQ(decompress_block(block, out), n);
    EXPECT_EQ(out, input);
  }
}

TEST(BgzfBlock, CompressibleDataShrinks) {
  std::string input(60000, 'A');
  std::string block;
  compress_block(input, block);
  EXPECT_LT(block.size(), 1000u);
}

TEST(BgzfBlock, InputTooLargeRejected) {
  std::string big(kMaxBlockInput + 1, 'x');
  std::string out;
  EXPECT_THROW(compress_block(big, out), Error);
}

TEST(BgzfBlock, EofMarkerIsValidEmptyBlock) {
  std::string_view eof = eof_marker();
  EXPECT_EQ(eof.size(), 28u);
  EXPECT_EQ(peek_block_size(eof), 28u);
  std::string out;
  EXPECT_EQ(decompress_block(eof, out), 0u);
}

TEST(BgzfBlock, BadMagicRejected) {
  std::string block;
  compress_block("data", block);
  block[0] = 'x';
  EXPECT_THROW(peek_block_size(block), FormatError);
}

TEST(BgzfBlock, CrcMismatchDetected) {
  std::string block;
  compress_block("hello world hello world", block);
  // Corrupt one byte of the stored CRC (last 8 bytes are CRC+ISIZE).
  block[block.size() - 6] ^= 0x5A;
  std::string out;
  EXPECT_THROW(decompress_block(block, out), FormatError);
}

TEST(BgzfBlock, TruncatedBlockDetected) {
  std::string block;
  compress_block("payload payload payload", block);
  std::string out;
  EXPECT_THROW(decompress_block(block.substr(0, block.size() - 1), out),
               FormatError);
}

TEST(BgzfBlock, VirtualOffsetPacking) {
  uint64_t v = make_voffset(0x123456789ABull, 0xCDEF);
  EXPECT_EQ(voffset_coffset(v), 0x123456789ABull);
  EXPECT_EQ(voffset_uoffset(v), 0xCDEFu);
  EXPECT_EQ(make_voffset(0, 0), 0u);
}

// ------------------------------------------------------------- writer/reader

TEST(BgzfFile, RoundTripSmall) {
  TempDir tmp;
  std::string path = tmp.file("t.bgzf");
  {
    Writer w(path);
    w.write("hello ");
    w.write("world");
    w.close();
  }
  Reader r(path);
  char buf[64];
  size_t got = r.read(buf, sizeof(buf));
  EXPECT_EQ(std::string(buf, got), "hello world");
  EXPECT_TRUE(r.eof());
}

TEST(BgzfFile, EndsWithEofMarker) {
  TempDir tmp;
  std::string path = tmp.file("t.bgzf");
  {
    Writer w(path);
    w.write("x");
    w.close();
  }
  std::string raw = read_file(path);
  ASSERT_GE(raw.size(), 28u);
  EXPECT_EQ(raw.substr(raw.size() - 28), std::string(eof_marker()));
}

TEST(BgzfFile, EmptyFileJustEof) {
  TempDir tmp;
  std::string path = tmp.file("e.bgzf");
  {
    Writer w(path);
    w.close();
  }
  Reader r(path);
  EXPECT_TRUE(r.eof());
  char c;
  EXPECT_EQ(r.read(&c, 1), 0u);
}

TEST(BgzfFile, MultiBlockRoundTrip) {
  TempDir tmp;
  std::string path = tmp.file("m.bgzf");
  std::string payload = random_payload(300000, 3);  // spans >4 blocks
  {
    Writer w(path);
    w.write(payload);
    w.close();
  }
  Reader r(path);
  std::string out(payload.size(), '\0');
  r.read_exact(out.data(), out.size());
  EXPECT_EQ(out, payload);
  EXPECT_TRUE(r.eof());
}

TEST(BgzfFile, ReadExactPastEndThrows) {
  TempDir tmp;
  std::string path = tmp.file("t.bgzf");
  {
    Writer w(path);
    w.write("abc");
    w.close();
  }
  Reader r(path);
  char buf[10];
  EXPECT_THROW(r.read_exact(buf, 10), FormatError);
}

TEST(BgzfFile, TellSeekRoundTrip) {
  TempDir tmp;
  std::string path = tmp.file("s.bgzf");
  std::vector<uint64_t> offsets;
  std::string payload;
  {
    Writer w(path);
    for (int i = 0; i < 2000; ++i) {
      std::string item = "item-" + std::to_string(i) + ";";
      offsets.push_back(w.tell());
      w.write(item);
      payload += item;
    }
    w.close();
  }
  Reader r(path);
  // Seek to a few recorded positions and verify the data there.
  for (int i : {0, 1, 999, 1999, 500}) {
    r.seek(offsets[static_cast<size_t>(i)]);
    std::string expect = "item-" + std::to_string(i) + ";";
    std::string got(expect.size(), '\0');
    r.read_exact(got.data(), got.size());
    EXPECT_EQ(got, expect);
  }
}

TEST(BgzfFile, FlushBlockForcesBoundary) {
  TempDir tmp;
  std::string path = tmp.file("f.bgzf");
  uint64_t voffset_after;
  {
    Writer w(path);
    w.write("header");
    w.flush_block();
    voffset_after = w.tell();
    EXPECT_EQ(voffset_uoffset(voffset_after), 0u);  // fresh block
    EXPECT_GT(voffset_coffset(voffset_after), 0u);
    w.write("body");
    w.close();
  }
  Reader r(path);
  r.seek(voffset_after);
  char buf[4];
  r.read_exact(buf, 4);
  EXPECT_EQ(std::string(buf, 4), "body");
}

TEST(BgzfFile, SeekToEofLegal) {
  TempDir tmp;
  std::string path = tmp.file("t.bgzf");
  uint64_t end_voffset;
  {
    Writer w(path);
    w.write("abc");
    w.flush_block();
    end_voffset = w.tell();
    w.close();
  }
  Reader r(path);
  r.seek(end_voffset);
  char c;
  EXPECT_EQ(r.read(&c, 1), 0u);
}

TEST(BgzfFile, WriterTellTracksUoffset) {
  TempDir tmp;
  Writer w(tmp.file("t.bgzf"));
  EXPECT_EQ(w.tell(), make_voffset(0, 0));
  w.write("abcd");
  EXPECT_EQ(w.tell(), make_voffset(0, 4));
  w.close();
}

TEST(BgzfFile, LargeWriteExactBlockBoundary) {
  TempDir tmp;
  std::string path = tmp.file("b.bgzf");
  std::string payload = random_payload(kMaxBlockInput * 2, 9);
  {
    Writer w(path);
    w.write(payload);
    EXPECT_EQ(voffset_uoffset(w.tell()), 0u);  // landed on a boundary
    w.close();
  }
  Reader r(path);
  std::string out(payload.size(), '\0');
  r.read_exact(out.data(), out.size());
  EXPECT_EQ(out, payload);
}

TEST(BgzfFile, GarbageFileRejected) {
  TempDir tmp;
  std::string path = tmp.file("g.bgzf");
  write_file(path, "this is not a bgzf file at all, not even close!");
  Reader r(path);
  char c;
  EXPECT_THROW(r.read(&c, 1), FormatError);
}

}  // namespace
}  // namespace ngsx::bgzf
