// Tests for FASTA indexing (.fai) and random-access fetching.

#include <gtest/gtest.h>

#include "formats/fai.h"
#include "util/rng.h"
#include "simdata/reference.h"
#include "util/tempdir.h"

namespace ngsx::fai {
namespace {

/// Writes a FASTA with the given per-sequence bodies at 60 cols.
std::string write_fasta(const TempDir& tmp,
                        const std::vector<std::pair<std::string, std::string>>&
                            sequences,
                        int width = 60) {
  std::string path = tmp.file("t.fasta");
  std::string text;
  for (const auto& [name, seq] : sequences) {
    text += ">" + name + "\n";
    for (size_t i = 0; i < seq.size(); i += static_cast<size_t>(width)) {
      text += seq.substr(i, static_cast<size_t>(width));
      text += '\n';
    }
  }
  write_file(path, text);
  return path;
}

std::string make_seq(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s += "ACGT"[rng.below(4)];
  }
  return s;
}

TEST(Fai, BuildGeometry) {
  TempDir tmp;
  std::string chr_a = make_seq(150, 1);
  std::string chr_b = make_seq(60, 2);
  std::string path = write_fasta(tmp, {{"chrA", chr_a}, {"chrB", chr_b}});
  FaiIndex index = FaiIndex::build(path);
  ASSERT_EQ(index.size(), 2u);
  const FaiEntry* a = index.find("chrA");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->length, 150);
  EXPECT_EQ(a->line_bases, 60);
  EXPECT_EQ(a->line_bytes, 61);
  EXPECT_EQ(a->offset, 6u);  // ">chrA\n"
  const FaiEntry* b = index.find("chrB");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->length, 60);
  EXPECT_EQ(index.find("chrC"), nullptr);
}

TEST(Fai, SaveLoadRoundTrip) {
  TempDir tmp;
  std::string path =
      write_fasta(tmp, {{"c1", make_seq(500, 3)}, {"c2", make_seq(61, 4)}});
  FaiIndex built = FaiIndex::build(path);
  built.save(path + ".fai");
  EXPECT_EQ(FaiIndex::load(path + ".fai"), built);
}

TEST(Fai, HeaderDescriptionsStripped) {
  TempDir tmp;
  std::string path = tmp.file("d.fasta");
  write_file(path, ">chr1 description text here\nACGTACGT\n");
  FaiIndex index = FaiIndex::build(path);
  ASSERT_EQ(index.size(), 1u);
  EXPECT_EQ(index.entries()[0].name, "chr1");
  EXPECT_EQ(index.entries()[0].length, 8);
}

TEST(Fai, NonUniformLinesRejected) {
  TempDir tmp;
  std::string path = tmp.file("bad.fasta");
  write_file(path, ">c\nACGTACGT\nACG\nACGTACGT\n");  // short middle line
  EXPECT_THROW(FaiIndex::build(path), FormatError);
}

TEST(Fai, ShortFinalLineAllowed) {
  TempDir tmp;
  std::string path = tmp.file("ok.fasta");
  write_file(path, ">c\nACGTACGT\nACG\n");
  FaiIndex index = FaiIndex::build(path);
  EXPECT_EQ(index.entries()[0].length, 11);
}

TEST(Fai, DuplicateNamesRejected) {
  TempDir tmp;
  std::string path = tmp.file("dup.fasta");
  write_file(path, ">c\nAC\n>c\nGT\n");
  EXPECT_THROW(FaiIndex::build(path), FormatError);
}

TEST(Fai, DataBeforeHeaderRejected) {
  TempDir tmp;
  std::string path = tmp.file("nohdr.fasta");
  write_file(path, "ACGT\n>c\nAC\n");
  EXPECT_THROW(FaiIndex::build(path), FormatError);
}

TEST(IndexedFasta, FetchMatchesSource) {
  TempDir tmp;
  std::string chr_a = make_seq(1000, 5);
  std::string chr_b = make_seq(123, 6);
  std::string path = write_fasta(tmp, {{"chrA", chr_a}, {"chrB", chr_b}});
  IndexedFasta fasta(path);
  // Slices crossing line boundaries, at edges, whole sequences.
  EXPECT_EQ(fasta.fetch("chrA", 0, 10), chr_a.substr(0, 10));
  EXPECT_EQ(fasta.fetch("chrA", 55, 70), chr_a.substr(55, 15));
  EXPECT_EQ(fasta.fetch("chrA", 990, 1000), chr_a.substr(990, 10));
  EXPECT_EQ(fasta.fetch("chrA", 59, 61), chr_a.substr(59, 2));
  EXPECT_EQ(fasta.fetch_all("chrB"), chr_b);
  // Clamping.
  EXPECT_EQ(fasta.fetch("chrB", 100, 5000), chr_b.substr(100));
  EXPECT_EQ(fasta.fetch("chrB", 50, 50), "");
  EXPECT_THROW(fasta.fetch("nope", 0, 5), UsageError);
}

TEST(IndexedFasta, LoadsExistingFaiFile) {
  TempDir tmp;
  std::string chr = make_seq(200, 7);
  std::string path = write_fasta(tmp, {{"c", chr}});
  FaiIndex::build(path).save(path + ".fai");
  IndexedFasta fasta(path);
  EXPECT_EQ(fasta.fetch("c", 10, 20), chr.substr(10, 10));
}

TEST(IndexedFasta, WorksWithSimulatorOutput) {
  TempDir tmp;
  auto genome = simdata::ReferenceGenome::simulate(
      simdata::mouse_like_references(150000), 9);
  std::string path = tmp.file("g.fasta");
  genome.write_fasta(path);
  IndexedFasta fasta(path);
  EXPECT_EQ(fasta.index().size(), genome.references().size());
  // Random windows agree with the in-memory genome.
  const std::string& chr1 = genome.sequence(0);
  EXPECT_EQ(fasta.fetch("chr1", 100, 400),
            chr1.substr(100, 300));
  EXPECT_EQ(fasta.fetch("chrM", 0, 50), genome.sequence(21).substr(0, 50));
}

TEST(GcFraction, Basics) {
  EXPECT_DOUBLE_EQ(gc_fraction("GGCC"), 1.0);
  EXPECT_DOUBLE_EQ(gc_fraction("AATT"), 0.0);
  EXPECT_DOUBLE_EQ(gc_fraction("ACGT"), 0.5);
  EXPECT_DOUBLE_EQ(gc_fraction("NNNN"), 0.0);  // no ACGT at all
  EXPECT_DOUBLE_EQ(gc_fraction("GCNN"), 1.0);  // N excluded from denominator
  EXPECT_DOUBLE_EQ(gc_fraction(""), 0.0);
  EXPECT_DOUBLE_EQ(gc_fraction("gcat"), 0.5);  // case-insensitive
}

}  // namespace
}  // namespace ngsx::fai
