// Concurrency stress tests for the exec engine, designed to run under
// ThreadSanitizer (the CI tsan job builds this binary with
// -fsanitize=thread). Each test hammers one primitive from many threads
// and checks a conservation property: no item lost, none duplicated,
// ordered commits stay ordered.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "exec/channel.h"
#include "exec/deque.h"
#include "exec/pipeline.h"
#include "exec/pool.h"
#include "util/rng.h"

namespace ngsx::exec {
namespace {

TEST(ChannelStress, ManyProducersManyConsumers) {
  // 4 producers push disjoint value ranges through a small channel into
  // 4 consumers; every value must arrive exactly once.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  Channel<int> ch(8);
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&ch, &seen] {
      while (auto v = ch.pop()) {
        seen[static_cast<size_t>(*v)].fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  ch.close();
  for (auto& t : consumers) {
    t.join();
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "value " << i;
  }
}

TEST(ChannelStress, MixedBlockingAndTryOps) {
  Channel<uint64_t> ch(4);
  std::atomic<uint64_t> pushed_sum{0};
  std::atomic<uint64_t> popped_sum{0};
  std::atomic<uint64_t> popped_count{0};
  constexpr int kThreads = 3;
  constexpr uint64_t kPerThread = 3000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kThreads; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(static_cast<uint64_t>(p) + 1);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t v = rng.below(1000) + 1;
        if (rng.chance(0.5)) {
          ASSERT_TRUE(ch.push(v));
        } else {
          while (!ch.try_push(v)) {
            std::this_thread::yield();
          }
        }
        pushed_sum.fetch_add(v);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kThreads; ++c) {
    consumers.emplace_back([&, c] {
      Rng rng(static_cast<uint64_t>(c) + 100);
      while (true) {
        std::optional<uint64_t> v;
        if (rng.chance(0.5)) {
          v = ch.pop();
          if (!v.has_value()) {
            return;  // closed and drained
          }
        } else {
          v = ch.try_pop();
          if (!v.has_value()) {
            if (ch.closed() && !(v = ch.pop()).has_value()) {
              return;
            }
            if (!v.has_value()) {
              continue;
            }
          }
        }
        popped_sum.fetch_add(*v);
        popped_count.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  ch.close();
  for (auto& t : consumers) {
    t.join();
  }
  EXPECT_EQ(popped_count.load(), kThreads * kPerThread);
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
}

TEST(DequeStress, OwnerVersusThieves) {
  // The owner pushes/pops while 3 thieves steal; each element must be
  // taken exactly once overall.
  constexpr int64_t kItems = 20000;
  constexpr int kThieves = 3;
  StealDeque<int64_t> dq;
  std::vector<std::atomic<int>> taken(kItems);
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      int64_t v = 0;
      while (!done.load()) {
        if (dq.steal(v)) {
          taken[static_cast<size_t>(v)].fetch_add(1);
        }
      }
      while (dq.steal(v)) {  // drain what the owner left behind
        taken[static_cast<size_t>(v)].fetch_add(1);
      }
    });
  }
  Rng rng(7);
  int64_t next = 0;
  while (next < kItems) {
    int64_t burst = static_cast<int64_t>(rng.below(64)) + 1;
    for (int64_t i = 0; i < burst && next < kItems; ++i) {
      dq.push(next++);
    }
    int64_t pops = static_cast<int64_t>(rng.below(32));
    int64_t v = 0;
    for (int64_t i = 0; i < pops && dq.pop(v); ++i) {
      taken[static_cast<size_t>(v)].fetch_add(1);
    }
  }
  int64_t v = 0;
  while (dq.pop(v)) {
    taken[static_cast<size_t>(v)].fetch_add(1);
  }
  done.store(true);
  for (auto& t : thieves) {
    t.join();
  }
  for (int64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(taken[static_cast<size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(PoolStress, RecursiveSpawnsConserveWork) {
  // Tasks recursively split like a divide-and-conquer sum; the pool must
  // neither lose nor duplicate leaves despite constant stealing.
  Pool pool(4);
  std::atomic<uint64_t> sum{0};
  std::function<void(uint64_t, uint64_t)> split =
      [&](uint64_t lo, uint64_t hi) {
        if (hi - lo <= 64) {
          uint64_t local = 0;
          for (uint64_t i = lo; i < hi; ++i) {
            local += i;
          }
          sum.fetch_add(local);
          return;
        }
        uint64_t mid = lo + (hi - lo) / 2;
        TaskGroup group(pool);
        group.spawn([&split, lo, mid] { split(lo, mid); });
        group.spawn([&split, mid, hi] { split(mid, hi); });
        group.wait();
      };
  constexpr uint64_t kN = 100000;
  TaskGroup root(pool);
  root.spawn([&split] { split(0, kN); });
  root.wait();
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(PoolStress, RandomGrainParallelFor) {
  Pool pool(4);
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    const uint64_t n = rng.below(50000) + 1;
    const uint64_t grain = rng.below(1000);  // 0 = auto
    std::atomic<uint64_t> sum{0};
    parallel_for(pool, 0, n, grain, [&](uint64_t lo, uint64_t hi) {
      uint64_t local = 0;
      for (uint64_t i = lo; i < hi; ++i) {
        local += i;
      }
      sum.fetch_add(local);
    });
    ASSERT_EQ(sum.load(), n * (n - 1) / 2)
        << "round " << round << " n=" << n << " grain=" << grain;
  }
}

TEST(PipelineStress, OrderPreservedUnderJitter) {
  Pool pool(4);
  for (int round = 0; round < 5; ++round) {
    constexpr int kItems = 1000;
    std::vector<uint64_t> committed;
    committed.reserve(kItems);
    PipelineOptions opt;
    opt.capacity = 8;
    opt.window = 16;
    Pipeline<uint64_t, uint64_t> pipe(
        pool,
        [round](uint64_t&& v) {
          // Data-dependent busy work so completion order is scrambled.
          Rng rng(v * 31 + static_cast<uint64_t>(round));
          uint64_t spin = rng.below(400);
          uint64_t acc = v;
          for (uint64_t i = 0; i < spin; ++i) {
            acc = acc * 6364136223846793005ull + 1442695040888963407ull;
          }
          return v * 2 + (acc & 0);  // keep the busy work observable
        },
        [&committed](uint64_t&& v) { committed.push_back(v); }, opt);
    for (uint64_t i = 0; i < kItems; ++i) {
      pipe.push(i);
    }
    pipe.finish();
    ASSERT_EQ(committed.size(), static_cast<size_t>(kItems));
    for (uint64_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(committed[static_cast<size_t>(i)], i * 2) << "round " << round;
    }
  }
}

TEST(PipelineStress, ManyProducersOneOrderedSink) {
  // Multiple producer threads share one pipeline; per-producer FIFO order
  // is not defined, but nothing may be lost or duplicated.
  Pool pool(4);
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 1500;
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  PipelineOptions opt;
  opt.capacity = 4;
  Pipeline<uint64_t, uint64_t> pipe(
      pool, [](uint64_t&& v) { return v; },
      [&seen](uint64_t&& v) { seen[static_cast<size_t>(v)].fetch_add(1); },
      opt);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pipe, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        pipe.push(static_cast<uint64_t>(p) * kPerProducer + i);
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  pipe.finish();
  for (size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

// ---------------------------------------------------------------------------
// Error propagation: a worker that throws must surface its error to the
// caller without deadlocking the remaining workers — the contract the
// fault-injection layer (docs/ROBUSTNESS.md) leans on end-to-end.
// ---------------------------------------------------------------------------

TEST(PipelineErrors, TransformErrorPropagatesWithoutDeadlock) {
  Pool pool(4);
  constexpr uint64_t kItems = 2000;
  constexpr uint64_t kPoison = 700;
  for (int round = 0; round < 5; ++round) {
    uint64_t produced = 0;
    try {
      ordered_pipeline<uint64_t, uint64_t>(
          pool,
          [&](uint64_t& item) {
            if (produced >= kItems) {
              return false;
            }
            item = produced++;
            return true;
          },
          [](uint64_t&& item, uint64_t) {
            if (item == kPoison) {
              throw IoError("poisoned transform " + std::to_string(item));
            }
            return item * 2;
          },
          [](uint64_t&&, uint64_t) {},
          PipelineOptions{});
      FAIL() << "transform error was swallowed";
    } catch (const IoError& e) {
      EXPECT_NE(std::string(e.what()).find("poisoned transform"),
                std::string::npos);
    }
  }
  // The pool survived five failed pipelines: still fully functional.
  std::atomic<uint64_t> sum{0};
  parallel_for(pool, 0, 1000, 1,
               [&](uint64_t b, uint64_t e) { sum += e - b; });
  EXPECT_EQ(sum.load(), 1000u);
}

TEST(PipelineErrors, SinkErrorPropagatesWithoutDeadlock) {
  Pool pool(4);
  constexpr uint64_t kItems = 2000;
  uint64_t produced = 0;
  uint64_t committed = 0;
  try {
    ordered_pipeline<uint64_t, uint64_t>(
        pool,
        [&](uint64_t& item) {
          if (produced >= kItems) {
            return false;
          }
          item = produced++;
          return true;
        },
        [](uint64_t&& item, uint64_t) { return item; },
        [&](uint64_t&& item, uint64_t) {
          if (item == 137) {
            throw IoError("poisoned sink");
          }
          ++committed;
        },
        PipelineOptions{});
    FAIL() << "sink error was swallowed";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("poisoned sink"), std::string::npos);
  }
  // Order guarantee holds right up to the failure point.
  EXPECT_EQ(committed, 137u);
}

TEST(PipelineErrors, SourceErrorPropagatesWithoutDeadlock) {
  Pool pool(4);
  uint64_t produced = 0;
  EXPECT_THROW(
      (ordered_pipeline<uint64_t, uint64_t>(
          pool,
          [&](uint64_t& item) {
            if (produced == 99) {
              throw IoError("poisoned source");
            }
            item = produced++;
            return true;
          },
          [](uint64_t&& item, uint64_t) { return item; },
          [](uint64_t&&, uint64_t) {}, PipelineOptions{})),
      IoError);
}

TEST(PipelineErrors, PushPipelineReportsWorkerErrorToProducer) {
  Pool pool(4);
  PipelineOptions opt;
  opt.workers = 4;
  Pipeline<uint64_t, uint64_t> pipe(
      pool,
      [](uint64_t&& item) {
        if (item == 50) {
          throw IoError("poisoned push transform");
        }
        return item;
      },
      [](uint64_t&&) {}, opt);
  // The error must surface from push() (backpressure path) or finish() —
  // and must not hang either one.
  try {
    for (uint64_t i = 0; i < 10000; ++i) {
      pipe.push(i);
    }
    pipe.finish();
    FAIL() << "worker error was swallowed";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("poisoned push transform"),
              std::string::npos);
  }
}

TEST(ParallelForErrors, BodyErrorPropagatesAndStopsSiblings) {
  Pool pool(4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<uint64_t> executed{0};
    try {
      parallel_for(pool, 0, 100000, 1, [&](uint64_t b, uint64_t) {
        if (b == 1000) {
          throw IoError("poisoned chunk");
        }
        executed.fetch_add(1, std::memory_order_relaxed);
      });
      FAIL() << "parallel_for swallowed the body error";
    } catch (const IoError& e) {
      EXPECT_NE(std::string(e.what()).find("poisoned chunk"),
                std::string::npos);
    }
    // Early exit: siblings stop claiming chunks once the group has failed.
    // Without the failed() check every non-poison chunk would run (exactly
    // 99999); any smaller count proves chunks were skipped. (No tighter
    // bound: under sanitizers the scheduler decides how many chunks the
    // siblings claim before the poison chunk's error is recorded.)
    EXPECT_LT(executed.load(), 99999u)
        << "siblings kept grinding after the failure";
  }
}

TEST(TaskGroupErrors, FirstErrorWinsAndGroupReportsFailed) {
  Pool pool(4);
  TaskGroup group(pool);
  EXPECT_FALSE(group.failed());
  for (int i = 0; i < 64; ++i) {
    group.spawn([i] {
      if (i % 8 == 3) {
        throw IoError("task " + std::to_string(i));
      }
    });
  }
  try {
    group.wait();
    FAIL() << "task errors were swallowed";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("task "), std::string::npos);
  }
  EXPECT_TRUE(group.failed());
}

}  // namespace
}  // namespace ngsx::exec
