// Tests for the streaming read-pair collation stage (docs/COLLATION.md):
// in-memory pairing, orphan/single/passthrough routing, spill-and-reunite
// across runs, paired FASTQ export, duplicate marking, and the
// byte-identity contract between in-memory and forced-spill configs.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/collate.h"
#include "core/convert.h"
#include "core/sort.h"
#include "formats/bam.h"
#include "formats/bamx.h"
#include "formats/baix2.h"
#include "formats/sam.h"
#include "simdata/readsim.h"
#include "util/tempdir.h"

namespace ngsx::core {
namespace {

using sam::AlignmentRecord;
using sam::SamHeader;

SamHeader test_header() {
  return SamHeader::from_references({{"chr1", 500000}, {"chr2", 300000}});
}

/// A complete primary pair: forward R1 at pos1, reverse R2 at pos2.
std::pair<AlignmentRecord, AlignmentRecord> make_pair(const std::string& name,
                                                      int32_t pos1,
                                                      int32_t pos2,
                                                      char qual = 'I') {
  AlignmentRecord r1;
  r1.qname = name;
  r1.flag = sam::kPaired | sam::kRead1 | sam::kMateReverse;
  r1.ref_id = 0;
  r1.pos = pos1;
  r1.cigar = sam::parse_cigar("50M");
  r1.seq = std::string(50, 'A');
  r1.qual = std::string(50, qual);
  AlignmentRecord r2;
  r2.qname = name;
  r2.flag = sam::kPaired | sam::kRead2 | sam::kReverse;
  r2.ref_id = 0;
  r2.pos = pos2;
  r2.cigar = sam::parse_cigar("50M");
  r2.seq = std::string(50, 'C');
  r2.qual = std::string(50, qual);
  return {r1, r2};
}

void write_bam(const std::string& path, const SamHeader& header,
               const std::vector<AlignmentRecord>& records) {
  bam::BamFileWriter w(path, header);
  for (const auto& rec : records) {
    w.write(rec);
  }
  w.close();
}

std::vector<AlignmentRecord> read_bam(const std::string& path) {
  bam::BamFileReader r(path);
  std::vector<AlignmentRecord> out;
  AlignmentRecord rec;
  while (r.next(rec)) {
    out.push_back(rec);
  }
  return out;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

int count_tmp_files(const std::string& dir) {
  int n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().string().find(".tmp.bam") != std::string::npos) {
      ++n;
    }
  }
  return n;
}

/// Event recorder: collects what the stage emitted.
struct Recorder {
  std::vector<std::pair<AlignmentRecord, AlignmentRecord>> pairs;
  std::vector<AlignmentRecord> orphans;
  std::vector<AlignmentRecord> singles;
  std::vector<AlignmentRecord> passthrough;

  CollateEvents events() {
    CollateEvents ev;
    ev.on_pair = [this](AlignmentRecord&& a, AlignmentRecord&& b) {
      pairs.emplace_back(std::move(a), std::move(b));
    };
    ev.on_orphan = [this](AlignmentRecord&& r) {
      orphans.push_back(std::move(r));
    };
    ev.on_single = [this](AlignmentRecord&& r) {
      singles.push_back(std::move(r));
    };
    ev.on_passthrough = [this](AlignmentRecord&& r) {
      passthrough.push_back(std::move(r));
    };
    return ev;
  }
};

// ----------------------------------------------------- CollateStage unit

TEST(CollateStage, PairsCompleteInMemory) {
  TempDir tmp;
  Recorder rec;
  CollateStage stage(test_header(), tmp.file("spill"), rec.events());
  for (int i = 0; i < 3; ++i) {
    auto [r1, r2] = make_pair("p" + std::to_string(i), 100 + i, 400 + i);
    // Mate arrives out of order half the time.
    if (i % 2 == 0) {
      stage.push(r1);
      stage.push(r2);
    } else {
      stage.push(r2);
      stage.push(r1);
    }
  }
  stage.finish();
  ASSERT_EQ(rec.pairs.size(), 3u);
  for (const auto& [a, b] : rec.pairs) {
    EXPECT_TRUE(a.is_read1()) << a.qname;
    EXPECT_TRUE(b.is_read2()) << b.qname;
    EXPECT_EQ(a.qname, b.qname);
  }
  EXPECT_TRUE(rec.orphans.empty());
  EXPECT_EQ(stage.stats().pairs, 3u);
  EXPECT_EQ(stage.stats().records, 6u);
  EXPECT_EQ(stage.stats().spill_runs, 0u);
}

TEST(CollateStage, SecondarySupplementaryExcludedFromPairing) {
  TempDir tmp;
  Recorder rec;
  CollateStage stage(test_header(), tmp.file("spill"), rec.events());
  auto [r1, r2] = make_pair("p0", 100, 400);
  AlignmentRecord secondary = r2;
  secondary.flag |= sam::kSecondary;
  AlignmentRecord supplementary = r2;
  supplementary.flag |= sam::kSupplementary;
  stage.push(r1);
  stage.push(secondary);      // must NOT pair with the pending r1
  stage.push(supplementary);  // ditto
  stage.push(r2);             // this one pairs
  stage.finish();
  ASSERT_EQ(rec.pairs.size(), 1u);
  EXPECT_EQ(rec.pairs[0].first.flag, r1.flag);
  EXPECT_EQ(rec.pairs[0].second.flag, r2.flag);
  EXPECT_EQ(rec.passthrough.size(), 2u);
  EXPECT_TRUE(rec.orphans.empty());
  EXPECT_EQ(stage.stats().passthrough, 2u);
}

TEST(CollateStage, SinglesAndOrphans) {
  TempDir tmp;
  Recorder rec;
  CollateStage stage(test_header(), tmp.file("spill"), rec.events());
  AlignmentRecord single;
  single.qname = "unpaired";
  single.ref_id = 0;
  single.pos = 50;
  single.cigar = sam::parse_cigar("50M");
  single.seq = std::string(50, 'G');
  stage.push(single);
  auto [r1, r2] = make_pair("widow", 100, 400);
  stage.push(r1);  // r2 never arrives
  stage.finish();
  ASSERT_EQ(rec.singles.size(), 1u);
  EXPECT_EQ(rec.singles[0].qname, "unpaired");
  ASSERT_EQ(rec.orphans.size(), 1u);
  EXPECT_EQ(rec.orphans[0].qname, "widow");
  EXPECT_TRUE(rec.pairs.empty());
}

TEST(CollateStage, SpillReunitesMatesAcrossManyRuns) {
  TempDir tmp;
  constexpr int kPairs = 60;
  // All R1s before all R2s: no pair is ever co-resident within an
  // 8-record budget, so everything must reunite through the merge.
  std::vector<AlignmentRecord> input;
  for (int i = 0; i < kPairs; ++i) {
    input.push_back(make_pair("p" + std::to_string(i), 100 + i, 4000 + i)
                        .first);
  }
  for (int i = 0; i < kPairs; ++i) {
    input.push_back(make_pair("p" + std::to_string(i), 100 + i, 4000 + i)
                        .second);
  }
  Recorder rec;
  CollateOptions options;
  options.max_records_in_memory = 8;
  options.temp_dir = tmp.path();
  CollateStage stage(test_header(), tmp.file("spill"), rec.events(), options);
  for (auto& r : input) {
    stage.push(std::move(r));
  }
  stage.finish();
  EXPECT_GT(stage.stats().spill_runs, 2u);  // well past two runs
  EXPECT_GT(stage.stats().spilled_records, 0u);
  EXPECT_GT(stage.stats().spilled_bytes, 0u);
  ASSERT_EQ(rec.pairs.size(), static_cast<size_t>(kPairs));
  std::set<std::string> names;
  for (const auto& [a, b] : rec.pairs) {
    EXPECT_TRUE(a.is_read1());
    EXPECT_TRUE(b.is_read2());
    EXPECT_EQ(a.qname, b.qname);
    names.insert(a.qname);
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kPairs));  // each exactly once
  EXPECT_TRUE(rec.orphans.empty());
  EXPECT_EQ(count_tmp_files(tmp.path()), 0);  // runs cleaned up
}

TEST(CollateStage, MalformedDuplicateRankBecomesOrphan) {
  TempDir tmp;
  Recorder rec;
  CollateStage stage(test_header(), tmp.file("spill"), rec.events());
  auto [r1, r2] = make_pair("twice", 100, 400);
  AlignmentRecord r1_again = r1;
  r1_again.pos = 111;
  stage.push(r1);
  stage.push(r1_again);  // same name, same rank: malformed input
  stage.push(r2);
  stage.finish();
  ASSERT_EQ(rec.pairs.size(), 1u);
  EXPECT_EQ(rec.pairs[0].first.pos, 100);
  ASSERT_EQ(rec.orphans.size(), 1u);
  EXPECT_EQ(rec.orphans[0].pos, 111);
}

// --------------------------------------------------------- collate_to_bam

/// Simulated dataset on disk; returns (path, records).
std::string write_simulated(TempDir& tmp, uint64_t pairs, uint64_t seed,
                            SamHeader* header_out = nullptr) {
  auto genome = simdata::ReferenceGenome::simulate(
      simdata::mouse_like_references(400000), seed);
  simdata::ReadSimConfig cfg;
  cfg.seed = seed;
  auto records = simdata::simulate_alignments(genome, pairs, cfg);
  std::string path = tmp.file("sim.bam");
  write_bam(path, genome.header(), records);
  if (header_out != nullptr) {
    *header_out = genome.header();
  }
  return path;
}

TEST(CollateToBam, NameGroupedOutput) {
  TempDir tmp;
  std::string in = write_simulated(tmp, 300, 7);
  CollateStats stats = collate_to_bam(in, tmp.file("collated.bam"));
  auto input = read_bam(in);
  auto output = read_bam(tmp.file("collated.bam"));
  ASSERT_EQ(output.size(), input.size());
  EXPECT_EQ(stats.records, input.size());
  EXPECT_EQ(stats.written, input.size());
  // Every name is one contiguous block, primaries R1-then-R2 up front.
  std::set<std::string> seen;
  for (size_t i = 0; i < output.size();) {
    const std::string& name = output[i].qname;
    ASSERT_TRUE(seen.insert(name).second) << "name split: " << name;
    size_t j = i;
    while (j < output.size() && output[j].qname == name) {
      ++j;
    }
    for (size_t k = i + 1; k < j; ++k) {
      EXPECT_LE(pairing_rank(output[k - 1]), pairing_rank(output[k]));
    }
    i = j;
  }
  EXPECT_EQ(stats.pairs, 300u);
}

TEST(CollateToBam, ByteIdenticalAcrossBudgets) {
  TempDir tmp;
  std::string in = write_simulated(tmp, 250, 8);
  CollateStats mem = collate_to_bam(in, tmp.file("mem.bam"));
  CollateOptions tiny;
  tiny.max_records_in_memory = 16;
  tiny.temp_dir = tmp.path();
  CollateStats ext = collate_to_bam(in, tmp.file("ext.bam"), tiny);
  EXPECT_EQ(mem.spill_runs, 0u);
  EXPECT_GT(ext.spill_runs, 2u);
  EXPECT_EQ(read_bytes(tmp.file("mem.bam")), read_bytes(tmp.file("ext.bam")));
  EXPECT_EQ(count_tmp_files(tmp.path()), 0);
}

// ------------------------------------------------------- collate_to_fastq

TEST(CollateToFastq, PairedExportWithOrphansAndSingles) {
  TempDir tmp;
  SamHeader header = test_header();
  std::vector<AlignmentRecord> records;
  for (int i = 0; i < 5; ++i) {
    auto [r1, r2] = make_pair("p" + std::to_string(i), 100 + i, 400 + i);
    records.push_back(r1);
    records.push_back(r2);
  }
  auto [w1, w2] = make_pair("widow", 900, 1300);
  records.push_back(w1);  // orphan: its r2 is never written
  AlignmentRecord single;
  single.qname = "solo";
  single.ref_id = 0;
  single.pos = 2000;
  single.cigar = sam::parse_cigar("50M");
  single.seq = std::string(50, 'T');
  records.push_back(single);
  std::string in = tmp.file("in.bam");
  write_bam(in, header, records);

  CollateStats stats = collate_to_fastq(in, tmp.file("reads"));
  EXPECT_EQ(stats.pairs, 5u);
  EXPECT_EQ(stats.orphans, 1u);
  EXPECT_EQ(stats.singles, 1u);
  ASSERT_EQ(stats.outputs.size(), 4u);

  std::string r1_text = read_bytes(tmp.file("reads_R1.fastq"));
  std::string r2_text = read_bytes(tmp.file("reads_R2.fastq"));
  EXPECT_EQ(std::count(r1_text.begin(), r1_text.end(), '\n'), 5 * 4);
  EXPECT_EQ(std::count(r2_text.begin(), r2_text.end(), '\n'), 5 * 4);
  EXPECT_NE(r1_text.find("/1\n"), std::string::npos);
  EXPECT_NE(r2_text.find("/2\n"), std::string::npos);
  EXPECT_NE(read_bytes(tmp.file("reads_orphans.fastq")).find("widow"),
            std::string::npos);
  EXPECT_NE(read_bytes(tmp.file("reads_singles.fastq")).find("solo"),
            std::string::npos);
}

TEST(CollateToFastq, NoOrphansFlagDropsOrphanFile) {
  TempDir tmp;
  SamHeader header = test_header();
  auto [r1, r2] = make_pair("widow", 900, 1300);
  std::string in = tmp.file("in.bam");
  write_bam(in, header, {r1});
  CollateOptions options;
  options.keep_orphans = false;
  CollateStats stats = collate_to_fastq(in, tmp.file("reads"), options);
  EXPECT_EQ(stats.orphans, 1u);  // still counted
  EXPECT_FALSE(std::filesystem::exists(tmp.file("reads_orphans.fastq")));
}

TEST(CollateToFastq, SameReadSetUnderForcedSpill) {
  // FASTQ emission *order* may differ across budgets (streaming contract);
  // the exported read set must not.
  TempDir tmp;
  SamHeader header;
  std::string sim = write_simulated(tmp, 200, 9, &header);
  // Coordinate-sorted input keeps mates nearby, so the bucket would
  // rarely overflow; rewrite it with all R1s before all R2s so no pair is
  // ever co-resident under a small budget — every pair must spill.
  auto records = read_bam(sim);
  std::stable_sort(records.begin(), records.end(),
                   [](const AlignmentRecord& a, const AlignmentRecord& b) {
                     return a.is_read1() && !b.is_read1();
                   });
  std::string in = tmp.file("split_mates.bam");
  write_bam(in, header, records);
  collate_to_fastq(in, tmp.file("mem"));
  CollateOptions tiny;
  tiny.max_records_in_memory = 16;
  tiny.temp_dir = tmp.path();
  CollateStats ext = collate_to_fastq(in, tmp.file("ext"), tiny);
  EXPECT_GT(ext.spill_runs, 0u);

  auto name_multiset = [](const std::string& text) {
    std::multiset<std::string> names;
    size_t pos = 0;
    while (pos < text.size()) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) {
        break;
      }
      names.insert(text.substr(pos, eol - pos));
      // Skip seq, +, qual lines.
      for (int i = 0; i < 3 && eol != std::string::npos; ++i) {
        eol = text.find('\n', eol + 1);
      }
      pos = eol == std::string::npos ? text.size() : eol + 1;
    }
    return names;
  };
  EXPECT_EQ(name_multiset(read_bytes(tmp.file("mem_R1.fastq"))),
            name_multiset(read_bytes(tmp.file("ext_R1.fastq"))));
  EXPECT_EQ(name_multiset(read_bytes(tmp.file("mem_R2.fastq"))),
            name_multiset(read_bytes(tmp.file("ext_R2.fastq"))));
  EXPECT_EQ(count_tmp_files(tmp.path()), 0);
}

// -------------------------------------------------------- mark_duplicates

/// Fixture for duplicate marking: a unique pair, a duplicated fragment
/// (three copies at one signature with distinct qualities), and a clipped
/// copy that must collide via unclipped coordinates.
std::vector<AlignmentRecord> dup_fixture() {
  std::vector<AlignmentRecord> records;
  auto [u1, u2] = make_pair("unique", 5000, 5400, 'I');
  records.push_back(u1);
  records.push_back(u2);
  // Three copies of fragment (100, 400): qualities '5' < 'C' < 'I'.
  for (auto [name, q] : std::initializer_list<std::pair<const char*, char>>{
           {"copy_low", '5'}, {"copy_best", 'I'}, {"copy_mid", 'C'}}) {
    auto [r1, r2] = make_pair(name, 100, 400, q);
    records.push_back(r1);
    records.push_back(r2);
  }
  // A soft-clipped copy of the same fragment: R1 at pos 102 with a 2S
  // leading clip (unclipped start 100), R2 ending 2 short with a trailing
  // clip (unclipped end 450 = the others' end_pos).
  auto [c1, c2] = make_pair("copy_clipped", 102, 400, '5');
  c1.cigar = sam::parse_cigar("2S48M");
  c2.cigar = sam::parse_cigar("48M2S");
  records.push_back(c1);
  records.push_back(c2);
  return records;
}

TEST(MarkDuplicates, BestPairSurvivesOthersMarked) {
  TempDir tmp;
  std::string in = tmp.file("in.bam");
  write_bam(in, test_header(), dup_fixture());
  CollateStats stats = mark_duplicates(in, tmp.file("out.bam"),
                                       DuplicateMode::kMark);
  EXPECT_EQ(stats.dup_pairs, 3u);    // low, mid, clipped lose
  EXPECT_EQ(stats.dup_records, 6u);
  auto out = read_bam(tmp.file("out.bam"));
  ASSERT_EQ(out.size(), 10u);
  std::map<std::string, int> dup_flags;
  for (const auto& rec : out) {
    dup_flags[rec.qname] += rec.is_duplicate() ? 1 : 0;
  }
  EXPECT_EQ(dup_flags["unique"], 0);
  EXPECT_EQ(dup_flags["copy_best"], 0);  // highest summed quality wins
  EXPECT_EQ(dup_flags["copy_low"], 2);
  EXPECT_EQ(dup_flags["copy_mid"], 2);
  EXPECT_EQ(dup_flags["copy_clipped"], 2);  // clipping does not hide it
}

TEST(MarkDuplicates, DropModeOmitsDuplicateGroups) {
  TempDir tmp;
  std::string in = tmp.file("in.bam");
  write_bam(in, test_header(), dup_fixture());
  CollateStats stats = mark_duplicates(in, tmp.file("out.bam"),
                                       DuplicateMode::kDrop);
  EXPECT_EQ(stats.dup_records, 6u);
  auto out = read_bam(tmp.file("out.bam"));
  ASSERT_EQ(out.size(), 4u);
  std::set<std::string> names;
  for (const auto& rec : out) {
    names.insert(rec.qname);
    EXPECT_FALSE(rec.is_duplicate());
  }
  EXPECT_EQ(names, (std::set<std::string>{"unique", "copy_best"}));
}

TEST(MarkDuplicates, ClearsPreexistingFlags) {
  TempDir tmp;
  // The only pair in the file arrives pre-flagged as a duplicate; with no
  // competitor its flag must be recomputed away, and the output must be
  // byte-identical to marking the unflagged copy of the same data.
  auto [r1, r2] = make_pair("solo_pair", 100, 400);
  AlignmentRecord f1 = r1;
  AlignmentRecord f2 = r2;
  f1.flag |= sam::kDuplicate;
  f2.flag |= sam::kDuplicate;
  write_bam(tmp.file("flagged.bam"), test_header(), {f1, f2});
  write_bam(tmp.file("clean.bam"), test_header(), {r1, r2});
  mark_duplicates(tmp.file("flagged.bam"), tmp.file("out_flagged.bam"),
                  DuplicateMode::kMark);
  mark_duplicates(tmp.file("clean.bam"), tmp.file("out_clean.bam"),
                  DuplicateMode::kMark);
  for (const auto& rec : read_bam(tmp.file("out_flagged.bam"))) {
    EXPECT_FALSE(rec.is_duplicate());
  }
  EXPECT_EQ(read_bytes(tmp.file("out_flagged.bam")),
            read_bytes(tmp.file("out_clean.bam")));
}

TEST(MarkDuplicates, OrphansAndSinglesNeverMarked) {
  TempDir tmp;
  auto records = dup_fixture();
  // An orphan R1 sitting exactly on the duplicated signature's start.
  auto [o1, o2] = make_pair("orphan", 100, 400, '0');
  records.push_back(o1);
  write_bam(tmp.file("in.bam"), test_header(), records);
  mark_duplicates(tmp.file("in.bam"), tmp.file("out.bam"),
                  DuplicateMode::kDrop);
  std::set<std::string> names;
  for (const auto& rec : read_bam(tmp.file("out.bam"))) {
    names.insert(rec.qname);
  }
  EXPECT_TRUE(names.count("orphan"));  // incomplete pairs never compete
}

TEST(MarkDuplicates, ByteIdenticalAcrossBudgets) {
  TempDir tmp;
  // Simulated base plus injected positional duplicates, so both passes
  // have real work under spilling.
  SamHeader header;
  std::string base = write_simulated(tmp, 200, 10, &header);
  auto records = read_bam(base);
  std::map<std::string, std::vector<AlignmentRecord>> groups;
  for (const auto& rec : records) {
    groups[rec.qname].push_back(rec);
  }
  int copied = 0;
  for (const auto& [name, group] : groups) {
    if (group.size() != 2 || group[0].is_unmapped() ||
        group[1].is_unmapped()) {
      continue;
    }
    for (AlignmentRecord rec : group) {
      rec.qname = "dupcopy." + std::to_string(copied) + "." + name;
      records.push_back(rec);
    }
    if (++copied == 40) {
      break;
    }
  }
  ASSERT_GT(copied, 0);
  std::string in = tmp.file("with_dups.bam");
  write_bam(in, header, records);

  CollateStats mem = mark_duplicates(in, tmp.file("mem.bam"),
                                     DuplicateMode::kMark);
  CollateOptions tiny;
  tiny.max_records_in_memory = 16;
  tiny.temp_dir = tmp.path();
  CollateStats ext = mark_duplicates(in, tmp.file("ext.bam"),
                                     DuplicateMode::kMark, tiny);
  EXPECT_EQ(mem.spill_runs, 0u);
  EXPECT_GT(ext.spill_runs, 2u);
  EXPECT_GT(mem.dup_records, 0u);
  EXPECT_EQ(mem.dup_records, ext.dup_records);
  EXPECT_EQ(read_bytes(tmp.file("mem.bam")), read_bytes(tmp.file("ext.bam")));
  EXPECT_EQ(count_tmp_files(tmp.path()), 0);

  // Drop mode is deterministic across budgets too.
  mark_duplicates(in, tmp.file("mem_drop.bam"), DuplicateMode::kDrop);
  mark_duplicates(in, tmp.file("ext_drop.bam"), DuplicateMode::kDrop, tiny);
  EXPECT_EQ(read_bytes(tmp.file("mem_drop.bam")),
            read_bytes(tmp.file("ext_drop.bam")));
}

TEST(MarkDuplicates, FeedsBaix2DuplicateFilter) {
  // End-to-end with the existing index-side duplicate exclusion: marked
  // BAM -> BAMX -> BAIXv2, query_all(include_duplicates=false) must see
  // exactly the unmarked mapped records.
  TempDir tmp;
  std::string in = tmp.file("in.bam");
  write_bam(in, test_header(), dup_fixture());
  mark_duplicates(in, tmp.file("marked.bam"), DuplicateMode::kMark);
  auto marked = read_bam(tmp.file("marked.bam"));

  bamx::BamxLayout layout;
  for (const auto& rec : marked) {
    layout.accommodate(rec);
  }
  bamx::BamxWriter writer(tmp.file("m.bamx"), test_header(), layout);
  for (const auto& rec : marked) {
    writer.write(rec);
  }
  writer.close();
  build_baix2(tmp.file("m.bamx"), tmp.file("m.baix2"));
  auto index = baix2::Baix2Index::load(tmp.file("m.baix2"));

  baix2::Filter no_dups;
  no_dups.include_duplicates = false;
  size_t expected = 0;
  for (const auto& rec : marked) {
    if (!rec.is_duplicate() && !rec.is_unmapped()) {
      ++expected;
    }
  }
  EXPECT_EQ(index.query_all(no_dups).size(), expected);
}

// --------------------------------------------------- parallel record parse

TEST(ForEachRecord, ParallelParseMatchesSerial) {
  TempDir tmp;
  std::string in = write_simulated(tmp, 300, 11);
  CollateOptions serial;
  serial.parse_threads = 1;
  std::vector<AlignmentRecord> a;
  for_each_record(in, serial,
                  [&](AlignmentRecord&& rec) { a.push_back(std::move(rec)); });
  CollateOptions parallel;
  parallel.parse_threads = 4;
  parallel.record_batch = 37;  // uneven batches across the pipeline
  std::vector<AlignmentRecord> b;
  for_each_record(in, parallel,
                  [&](AlignmentRecord&& rec) { b.push_back(std::move(rec)); });
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ngsx::core
