// Tests for the sequential comparators: Picard-style boxed records and the
// BamTools-style access path, plus functional equivalence with the native
// converters (so Table I compares implementations, not behaviours).

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "baseline/picardlike.h"
#include "core/convert.h"
#include "simdata/readsim.h"
#include "util/tempdir.h"

namespace ngsx::baseline {
namespace {

using sam::AlignmentRecord;

struct Dataset {
  TempDir tmp;
  simdata::ReferenceGenome genome;
  std::vector<AlignmentRecord> records;
  std::string sam_path;
  std::string bam_path;

  explicit Dataset(uint64_t pairs = 150, uint64_t seed = 51)
      : genome(simdata::ReferenceGenome::simulate(
            simdata::mouse_like_references(300000), seed)) {
    simdata::ReadSimConfig cfg;
    cfg.seed = seed;
    records = simdata::simulate_alignments(genome, pairs, cfg);
    sam_path = tmp.file("d.sam");
    bam_path = tmp.file("d.bam");
    sam::SamFileWriter sw(sam_path, genome.header());
    bam::BamFileWriter bw(bam_path, genome.header());
    for (const auto& r : records) {
      sw.write(r);
      bw.write(r);
    }
    sw.close();
    bw.close();
  }
};

// ------------------------------------------------------------ PicardRecord

TEST(PicardRecord, ParseBoxesAllFields) {
  auto rec = parse_picard_record(
      "r1\t99\tchr1\t100\t60\t90M\t=\t300\t290\tACGT\tIIII\tNM:i:1");
  EXPECT_EQ(rec->read_name, "r1");
  EXPECT_EQ(rec->flags, 99);
  EXPECT_EQ(rec->reference_name, "chr1");
  EXPECT_EQ(rec->alignment_start, 100);  // stays 1-based like SAM-JDK
  EXPECT_EQ(rec->cigar_string, "90M");
  EXPECT_EQ(rec->attributes.at("NM"), "i:1");
  EXPECT_TRUE(rec->read_paired());
  EXPECT_FALSE(rec->read_negative_strand());
}

TEST(PicardRecord, ValidationCatchesBadRecords) {
  EXPECT_THROW(parse_picard_record("r\t0\tchr1"), FormatError);
  EXPECT_THROW(
      parse_picard_record("r\t0\tchr1\t1\t999\t*\t*\t0\t0\t*\t*"),
      FormatError);  // MAPQ out of range
  EXPECT_THROW(
      parse_picard_record("r\t0\tchr1\t1\t0\tZZ\t*\t0\t0\t*\t*"),
      FormatError);  // bad CIGAR
  EXPECT_THROW(
      parse_picard_record("r\t0\tchr1\t1\t0\t*\t*\t0\t0\tACGT\tI"),
      FormatError);  // SEQ/QUAL mismatch
  EXPECT_THROW(
      parse_picard_record("\t0\tchr1\t1\t0\t*\t*\t0\t0\t*\t*"),
      FormatError);  // empty name
}

TEST(PicardRecord, FromBamMatchesTextPath) {
  Dataset d(20);
  bam::BamFileReader reader(d.bam_path);
  AlignmentRecord rec;
  ASSERT_TRUE(reader.next(rec));
  auto from_bam = picard_record_from_bam(rec, reader.header());
  std::string line;
  sam::format_record(rec, reader.header(), line);
  auto from_text = parse_picard_record(line);
  EXPECT_EQ(from_bam->read_name, from_text->read_name);
  EXPECT_EQ(from_bam->flags, from_text->flags);
  EXPECT_EQ(from_bam->cigar_string, from_text->cigar_string);
  EXPECT_EQ(from_bam->attributes, from_text->attributes);
}

// -------------------------------------------------------------- operations

TEST(PicardOps, SamToFastqMatchesNativeConverter) {
  Dataset d;
  std::string picard_out = d.tmp.file("picard.fastq");
  uint64_t n = picard_sam_to_fastq(d.sam_path, picard_out);
  EXPECT_EQ(n, d.records.size());

  core::ConvertOptions options;
  options.format = core::TargetFormat::kFastq;
  options.ranks = 1;
  auto stats =
      core::convert_sam(d.sam_path, d.tmp.subdir("native"), options);
  EXPECT_EQ(read_file(picard_out), read_file(stats.outputs[0]));
}

TEST(PicardOps, BamToSamMatchesNativeConverter) {
  Dataset d;
  std::string picard_out = d.tmp.file("picard.sam");
  uint64_t n = picard_bam_to_sam(d.bam_path, picard_out);
  EXPECT_EQ(n, d.records.size());
  auto stats = core::convert_bam_sequential(
      d.bam_path, d.tmp.file("native.sam"), core::TargetFormat::kSam);
  EXPECT_EQ(stats.records_in, n);
  // Aux tag order may differ (Picard's attribute map is tag-sorted);
  // compare records structurally with tags canonicalized.
  auto sort_tags = [](AlignmentRecord& rec) {
    std::sort(rec.tags.begin(), rec.tags.end(),
              [](const sam::AuxField& x, const sam::AuxField& y) {
                return std::tie(x.tag[0], x.tag[1]) <
                       std::tie(y.tag[0], y.tag[1]);
              });
  };
  sam::SamFileReader a(picard_out);
  sam::SamFileReader b(d.tmp.file("native.sam"));
  AlignmentRecord ra;
  AlignmentRecord rb;
  size_t count = 0;
  while (a.next(ra)) {
    ASSERT_TRUE(b.next(rb));
    sort_tags(ra);
    sort_tags(rb);
    EXPECT_EQ(ra, rb) << "record " << count;
    ++count;
  }
  EXPECT_EQ(count, d.records.size());
}

TEST(PicardOps, FastqSkipsSequencelessRecords) {
  TempDir tmp;
  auto header = sam::SamHeader::from_references({{"chr1", 1000}});
  std::string path = tmp.file("s.sam");
  write_file(path, header.text() +
                       "r1\t0\tchr1\t1\t0\t*\t*\t0\t0\t*\t*\n"
                       "r2\t0\tchr1\t1\t0\t4M\t*\t0\t0\tACGT\tIIII\n");
  std::string out = tmp.file("o.fastq");
  EXPECT_EQ(picard_sam_to_fastq(path, out), 1u);
}

// ---------------------------------------------------------- BamTools style

TEST(BamToolsStyle, MemoryObjectExpandsFields) {
  Dataset d(10);
  BamToolsStyleReader reader(d.bam_path);
  BamToolsAlignment a;
  ASSERT_TRUE(reader.GetNextAlignment(a));
  EXPECT_EQ(a.Name, d.records[0].qname);
  EXPECT_EQ(a.Position, d.records[0].pos);
  std::string cigar;
  sam::format_cigar(d.records[0].cigar, cigar);
  EXPECT_EQ(a.CigarData, cigar);
  EXPECT_EQ(a.QueryBases, d.records[0].seq);
  EXPECT_FALSE(a.TagData.empty());
}

TEST(BamToolsStyle, AdaptRecoversNativeRecord) {
  Dataset d(60);
  BamToolsStyleReader reader(d.bam_path);
  BamToolsAlignment a;
  size_t i = 0;
  while (reader.GetNextAlignment(a)) {
    AlignmentRecord rec = adapt(a, reader.header());
    ASSERT_LT(i, d.records.size());
    EXPECT_EQ(rec, d.records[i]) << "record " << i;
    ++i;
  }
  EXPECT_EQ(i, d.records.size());
}

TEST(BamToolsStyle, ConvertViaBamtoolsMatchesNative) {
  Dataset d;
  std::string via = d.tmp.file("via.bed");
  uint64_t n = convert_bam_via_bamtools(d.bam_path, via, "bed");
  auto native = core::convert_bam_sequential(
      d.bam_path, d.tmp.file("native.bed"), core::TargetFormat::kBed);
  EXPECT_EQ(n, native.records_out);
  EXPECT_EQ(read_file(via), read_file(d.tmp.file("native.bed")));
}

}  // namespace
}  // namespace ngsx::baseline
