// Tests for the external-merge coordinate sorter.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <thread>

#include "core/sort.h"
#include "formats/bai.h"
#include "formats/bam.h"
#include "formats/sam.h"
#include "testutil.h"
#include "util/tempdir.h"

namespace ngsx::core {
namespace {

using sam::AlignmentRecord;
using sam::SamHeader;

SamHeader sort_header() {
  return SamHeader::from_references({{"chr1", 500000}, {"chr2", 300000}});
}

/// Shuffled records, including unmapped ones.
std::vector<AlignmentRecord> shuffled_records(size_t n, uint64_t seed) {
  SamHeader header = sort_header();
  Rng rng(seed);
  std::vector<AlignmentRecord> records;
  for (size_t i = 0; i < n; ++i) {
    AlignmentRecord rec = testutil::random_record(rng, header);
    rec.qname = "q" + std::to_string(i);  // unique, for stability checks
    records.push_back(rec);
  }
  return records;
}

void write_bam(const std::string& path,
               const std::vector<AlignmentRecord>& records) {
  bam::BamFileWriter w(path, sort_header());
  for (const auto& rec : records) {
    w.write(rec);
  }
  w.close();
}

std::vector<AlignmentRecord> read_bam(const std::string& path) {
  bam::BamFileReader r(path);
  std::vector<AlignmentRecord> out;
  AlignmentRecord rec;
  while (r.next(rec)) {
    out.push_back(rec);
  }
  return out;
}

void expect_sorted_same_multiset(const std::vector<AlignmentRecord>& input,
                                 const std::vector<AlignmentRecord>& output) {
  ASSERT_EQ(output.size(), input.size());
  // Sorted by coordinate, unmapped last.
  for (size_t i = 1; i < output.size(); ++i) {
    uint32_t ra = static_cast<uint32_t>(output[i - 1].ref_id);
    uint32_t rb = static_cast<uint32_t>(output[i].ref_id);
    ASSERT_TRUE(ra < rb || (ra == rb && output[i - 1].pos <= output[i].pos))
        << "records " << i - 1 << ", " << i;
  }
  // Same multiset (match by unique qname, then full equality).
  std::map<std::string, const AlignmentRecord*> by_name;
  for (const auto& rec : input) {
    by_name[rec.qname] = &rec;
  }
  for (const auto& rec : output) {
    auto it = by_name.find(rec.qname);
    ASSERT_NE(it, by_name.end()) << rec.qname;
    EXPECT_EQ(rec, *it->second);
  }
}

TEST(Sort, InMemoryPath) {
  TempDir tmp;
  auto records = shuffled_records(500, 1);
  write_bam(tmp.file("in.bam"), records);
  uint64_t n = sort_to_bam(tmp.file("in.bam"), tmp.file("out.bam"));
  EXPECT_EQ(n, records.size());
  expect_sorted_same_multiset(records, read_bam(tmp.file("out.bam")));
  EXPECT_TRUE(is_coordinate_sorted(tmp.file("out.bam")));
}

TEST(Sort, ExternalMergePath) {
  TempDir tmp;
  auto records = shuffled_records(1000, 2);
  write_bam(tmp.file("in.bam"), records);
  SortOptions options;
  options.max_records_in_memory = 64;  // forces ~16 runs
  uint64_t n = sort_to_bam(tmp.file("in.bam"), tmp.file("out.bam"), options);
  EXPECT_EQ(n, records.size());
  expect_sorted_same_multiset(records, read_bam(tmp.file("out.bam")));
  EXPECT_TRUE(is_coordinate_sorted(tmp.file("out.bam")));
  // Spill runs cleaned up.
  namespace fs = std::filesystem;
  int leftovers = 0;
  for (const auto& entry : fs::directory_iterator(tmp.path())) {
    if (entry.path().string().find(".tmp.bam") != std::string::npos) {
      ++leftovers;
    }
  }
  EXPECT_EQ(leftovers, 0);
}

TEST(Sort, ExternalMatchesInMemory) {
  TempDir tmp;
  auto records = shuffled_records(800, 3);
  write_bam(tmp.file("in.bam"), records);
  sort_to_bam(tmp.file("in.bam"), tmp.file("mem.bam"));
  SortOptions tiny;
  tiny.max_records_in_memory = 10;
  sort_to_bam(tmp.file("in.bam"), tmp.file("ext.bam"), tiny);
  EXPECT_EQ(read_bam(tmp.file("mem.bam")), read_bam(tmp.file("ext.bam")));
}

TEST(Sort, StableForEqualCoordinates) {
  TempDir tmp;
  // Many records at the same coordinate: input order must be preserved.
  std::vector<AlignmentRecord> records;
  for (int i = 0; i < 200; ++i) {
    AlignmentRecord rec;
    rec.qname = "dup" + std::to_string(i);
    rec.ref_id = 0;
    rec.pos = 1000;
    rec.cigar = sam::parse_cigar("50M");
    rec.seq = std::string(50, 'A');
    records.push_back(rec);
  }
  write_bam(tmp.file("in.bam"), records);
  SortOptions tiny;
  tiny.max_records_in_memory = 16;
  sort_to_bam(tmp.file("in.bam"), tmp.file("out.bam"), tiny);
  auto out = read_bam(tmp.file("out.bam"));
  ASSERT_EQ(out.size(), records.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].qname, "dup" + std::to_string(i));
  }
}

TEST(Sort, ConcurrentSortsSharingTempDir) {
  // Regression: run paths used to be deterministic per target, so two
  // spilling sorts sharing a temp directory could clobber each other's
  // runs. Paths now embed pid + a process-wide token.
  TempDir tmp;
  namespace fs = std::filesystem;
  const std::string shared = tmp.file("spill");
  fs::create_directories(shared);
  auto records_a = shuffled_records(600, 21);
  auto records_b = shuffled_records(600, 22);
  write_bam(tmp.file("a.bam"), records_a);
  write_bam(tmp.file("b.bam"), records_b);
  SortOptions options;
  options.max_records_in_memory = 32;  // both sorts spill many runs
  options.temp_dir = shared;
  std::thread ta([&] {
    sort_to_bam(tmp.file("a.bam"), tmp.file("a_sorted.bam"), options);
  });
  std::thread tb([&] {
    sort_to_bam(tmp.file("b.bam"), tmp.file("b_sorted.bam"), options);
  });
  ta.join();
  tb.join();
  expect_sorted_same_multiset(records_a, read_bam(tmp.file("a_sorted.bam")));
  expect_sorted_same_multiset(records_b, read_bam(tmp.file("b_sorted.bam")));
  EXPECT_TRUE(fs::is_empty(shared));  // every run cleaned up
}

TEST(Sort, RepeatedSortsSameTargetDoNotCollide) {
  // Same output path, same temp dir, sequential invocations: the
  // monotonic run token keeps every invocation's runs distinct even
  // though target and pid are identical.
  TempDir tmp;
  auto records = shuffled_records(300, 23);
  write_bam(tmp.file("in.bam"), records);
  SortOptions options;
  options.max_records_in_memory = 32;
  options.temp_dir = tmp.path();
  sort_to_bam(tmp.file("in.bam"), tmp.file("out.bam"), options);
  std::string first = read_bam(tmp.file("out.bam")).empty() ? "" : "ok";
  sort_to_bam(tmp.file("in.bam"), tmp.file("out.bam"), options);
  expect_sorted_same_multiset(records, read_bam(tmp.file("out.bam")));
  EXPECT_EQ(first, "ok");
  namespace fs = std::filesystem;
  int leftovers = 0;
  for (const auto& entry : fs::directory_iterator(tmp.path())) {
    if (entry.path().string().find(".tmp.bam") != std::string::npos) {
      ++leftovers;
    }
  }
  EXPECT_EQ(leftovers, 0);
}

TEST(Sort, SamInputAccepted) {
  TempDir tmp;
  auto records = shuffled_records(300, 4);
  {
    sam::SamFileWriter w(tmp.file("in.sam"), sort_header());
    for (const auto& rec : records) {
      w.write(rec);
    }
    w.close();
  }
  uint64_t n = sort_to_bam(tmp.file("in.sam"), tmp.file("out.bam"));
  EXPECT_EQ(n, records.size());
  expect_sorted_same_multiset(records, read_bam(tmp.file("out.bam")));
}

TEST(Sort, EmptyInput) {
  TempDir tmp;
  write_bam(tmp.file("in.bam"), {});
  EXPECT_EQ(sort_to_bam(tmp.file("in.bam"), tmp.file("out.bam")), 0u);
  EXPECT_TRUE(read_bam(tmp.file("out.bam")).empty());
  EXPECT_TRUE(is_coordinate_sorted(tmp.file("out.bam")));
}

TEST(Sort, SortedOutputFeedsBaiBuild) {
  // End-to-end: unsorted BAM -> sort -> BAI build succeeds (it rejects
  // unsorted input, so this proves the order contract).
  TempDir tmp;
  auto records = shuffled_records(400, 5);
  write_bam(tmp.file("in.bam"), records);
  EXPECT_FALSE(is_coordinate_sorted(tmp.file("in.bam")));
  sort_to_bam(tmp.file("in.bam"), tmp.file("out.bam"));
  EXPECT_NO_THROW(bai::BaiIndex::build(tmp.file("out.bam")));
}

TEST(IsSorted, DetectsOrderViolations) {
  TempDir tmp;
  std::vector<AlignmentRecord> records;
  AlignmentRecord a;
  a.qname = "a";
  a.ref_id = 0;
  a.pos = 100;
  AlignmentRecord b = a;
  b.qname = "b";
  b.pos = 50;
  write_bam(tmp.file("bad.bam"), {a, b});
  EXPECT_FALSE(is_coordinate_sorted(tmp.file("bad.bam")));
  write_bam(tmp.file("good.bam"), {b, a});
  EXPECT_TRUE(is_coordinate_sorted(tmp.file("good.bam")));

  // Unmapped in the middle is a violation; trailing unmapped is fine.
  AlignmentRecord u;
  u.qname = "u";
  u.flag = sam::kUnmapped;
  write_bam(tmp.file("mid.bam"), {b, u, a});
  EXPECT_FALSE(is_coordinate_sorted(tmp.file("mid.bam")));
  write_bam(tmp.file("tail.bam"), {b, a, u});
  EXPECT_TRUE(is_coordinate_sorted(tmp.file("tail.bam")));
}

}  // namespace
}  // namespace ngsx::core
