// Tests for the paper's BAMX / BAIX formats: fixed-stride layout, random
// access, and the region index used by partial conversion.

#include <gtest/gtest.h>

#include <algorithm>

#include "formats/bamx.h"
#include "simdata/readsim.h"
#include "util/tempdir.h"

namespace ngsx::bamx {
namespace {

using sam::AlignmentRecord;
using sam::SamHeader;

SamHeader test_header() {
  return SamHeader::from_references({{"chr1", 1000000}, {"chr2", 500000}});
}

AlignmentRecord sample_record(int i) {
  AlignmentRecord rec;
  rec.qname = "read-" + std::to_string(i);
  rec.flag = sam::kPaired | (i % 2 == 0 ? sam::kRead1 : sam::kRead2);
  rec.ref_id = i % 2;
  rec.pos = 100 * i;
  rec.mapq = static_cast<uint8_t>(i % 61);
  rec.cigar = sam::parse_cigar(i % 3 == 0 ? "90M" : "5S40M2D45M");
  rec.mate_ref_id = rec.ref_id;
  rec.mate_pos = 100 * i + 200;
  rec.tlen = 290;
  rec.seq = std::string(static_cast<size_t>(50 + i % 40), "ACGT"[i % 4]);
  rec.qual = std::string(rec.seq.size(), 'E');
  if (i % 4 == 0) {
    rec.tags.push_back(sam::parse_aux("NM:i:" + std::to_string(i % 9)));
  }
  if (i % 7 == 0) {
    rec.tags.push_back(sam::parse_aux("ZB:B:S,1,2,3,4"));
  }
  return rec;
}

// ------------------------------------------------------------------ layout

TEST(BamxLayout, AccommodateTracksMaxima) {
  BamxLayout layout;
  AlignmentRecord small = sample_record(1);
  AlignmentRecord big = sample_record(39);  // longer seq
  layout.accommodate(small);
  layout.accommodate(big);
  EXPECT_TRUE(layout.fits(small));
  EXPECT_TRUE(layout.fits(big));
  EXPECT_GE(layout.max_seq, std::max(small.seq.size(), big.seq.size()));
}

TEST(BamxLayout, StrideIsAligned) {
  BamxLayout layout;
  layout.accommodate(sample_record(3));
  EXPECT_EQ(layout.stride() % 8, 0u);
  EXPECT_GE(layout.stride(), layout.aux_offset());
}

TEST(BamxLayout, MergeTakesMaxima) {
  BamxLayout a;
  a.max_qname = 10;
  a.max_seq = 100;
  BamxLayout b;
  b.max_qname = 20;
  b.max_cigar = 7;
  a.merge(b);
  EXPECT_EQ(a.max_qname, 20u);
  EXPECT_EQ(a.max_seq, 100u);
  EXPECT_EQ(a.max_cigar, 7u);
}

TEST(BamxLayout, FitsRejectsOversize) {
  BamxLayout layout;
  layout.accommodate(sample_record(1));
  AlignmentRecord huge = sample_record(1);
  huge.qname = std::string(200, 'q');
  EXPECT_FALSE(layout.fits(huge));
}

// ------------------------------------------------------------ record codec

TEST(BamxRecord, EncodeDecodeRoundTrip) {
  for (int i = 0; i < 50; ++i) {
    AlignmentRecord rec = sample_record(i);
    BamxLayout layout;
    layout.accommodate(rec);
    // Pad the layout beyond the record to exercise real padding.
    layout.max_qname += 13;
    layout.max_cigar += 3;
    layout.max_seq += 21;
    layout.max_aux += 17;
    std::string buf;
    encode_record(rec, layout, buf);
    EXPECT_EQ(buf.size(), layout.stride());
    AlignmentRecord back;
    decode_record(buf, layout, back);
    EXPECT_EQ(back, rec) << "record " << i;
  }
}

TEST(BamxRecord, EncodeRejectsOverflow) {
  BamxLayout tiny;
  tiny.max_qname = 2;
  AlignmentRecord rec = sample_record(1);
  std::string buf;
  EXPECT_THROW(encode_record(rec, tiny, buf), UsageError);
}

TEST(BamxRecord, PeekRefPos) {
  AlignmentRecord rec = sample_record(5);
  BamxLayout layout;
  layout.accommodate(rec);
  std::string buf;
  encode_record(rec, layout, buf);
  auto [ref, pos] = peek_ref_pos(buf);
  EXPECT_EQ(ref, rec.ref_id);
  EXPECT_EQ(pos, rec.pos);
}

TEST(BamxRecord, UnmappedRoundTrip) {
  AlignmentRecord rec;
  rec.qname = "u";
  rec.flag = sam::kUnmapped;
  rec.seq = "ACGT";
  BamxLayout layout;
  layout.accommodate(rec);
  std::string buf;
  encode_record(rec, layout, buf);
  AlignmentRecord back;
  decode_record(buf, layout, back);
  EXPECT_EQ(back, rec);
}

// -------------------------------------------------------------- file layer

struct FileFixture {
  TempDir tmp;
  std::string path;
  std::vector<AlignmentRecord> records;
  BamxLayout layout;

  explicit FileFixture(int n = 200) {
    for (int i = 0; i < n; ++i) {
      records.push_back(sample_record(i));
      layout.accommodate(records.back());
    }
    path = tmp.file("t.bamx");
    BamxWriter w(path, test_header(), layout);
    for (const auto& rec : records) {
      w.write(rec);
    }
    w.close();
  }
};

TEST(BamxFile, HeaderAndCountPersisted) {
  FileFixture f;
  BamxReader r(f.path);
  EXPECT_EQ(r.num_records(), f.records.size());
  EXPECT_EQ(r.layout(), f.layout);
  EXPECT_EQ(r.header().references().size(), 2u);
}

TEST(BamxFile, RandomAccessAnyOrder) {
  FileFixture f;
  BamxReader r(f.path);
  AlignmentRecord rec;
  for (uint64_t i : {199u, 0u, 57u, 123u, 1u, 198u}) {
    r.read(i, rec);
    EXPECT_EQ(rec, f.records[i]) << "record " << i;
  }
}

TEST(BamxFile, ReadRefPosMatches) {
  FileFixture f;
  BamxReader r(f.path);
  for (uint64_t i = 0; i < f.records.size(); i += 17) {
    auto [ref, pos] = r.read_ref_pos(i);
    EXPECT_EQ(ref, f.records[i].ref_id);
    EXPECT_EQ(pos, f.records[i].pos);
  }
}

TEST(BamxFile, ReadRangeBulk) {
  FileFixture f;
  BamxReader r(f.path);
  std::vector<AlignmentRecord> batch;
  r.read_range(50, 100, batch);
  ASSERT_EQ(batch.size(), 50u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i], f.records[50 + i]);
  }
  // Appending semantics.
  r.read_range(0, 10, batch);
  EXPECT_EQ(batch.size(), 60u);
  EXPECT_EQ(batch[50], f.records[0]);
  // Empty range is a no-op.
  r.read_range(5, 5, batch);
  EXPECT_EQ(batch.size(), 60u);
}

TEST(BamxFile, OutOfRangeChecked) {
  FileFixture f;
  BamxReader r(f.path);
  AlignmentRecord rec;
  EXPECT_THROW(r.read(f.records.size(), rec), Error);
  std::vector<AlignmentRecord> batch;
  EXPECT_THROW(r.read_range(0, f.records.size() + 1, batch), Error);
}

TEST(BamxFile, BadMagicRejected) {
  TempDir tmp;
  std::string path = tmp.file("bad.bamx");
  write_file(path, "garbage garbage garbage garbage garbage!");
  EXPECT_THROW(BamxReader r(path), FormatError);
}

TEST(BamxFile, TruncationDetected) {
  FileFixture f;
  std::string data = read_file(f.path);
  std::string cut = f.tmp.file("cut.bamx");
  write_file(cut, data.substr(0, data.size() - f.layout.stride()));
  EXPECT_THROW(BamxReader r(cut), FormatError);
}

TEST(BamxFile, EmptyFileRoundTrip) {
  TempDir tmp;
  std::string path = tmp.file("empty.bamx");
  BamxLayout layout;
  {
    BamxWriter w(path, test_header(), layout);
    w.close();
  }
  BamxReader r(path);
  EXPECT_EQ(r.num_records(), 0u);
}

// ------------------------------------------------------------- raw ranges

TEST(BamxFile, RawRangeMatchesEncodedRecords) {
  FileFixture f;
  BamxReader r(f.path);
  std::string expected;
  for (uint64_t i = 30; i < 70; ++i) {
    encode_record(f.records[i], f.layout, expected);
  }
  std::string raw;
  r.read_raw_range(30, 70, raw);
  EXPECT_EQ(raw, expected);
  // Appending semantics; empty range is a no-op.
  r.read_raw_range(10, 10, raw);
  EXPECT_EQ(raw.size(), 40 * f.layout.stride());
  r.read_raw_range(0, 1, raw);
  EXPECT_EQ(raw.size(), 41 * f.layout.stride());
  // The appended block decodes back to the record it came from.
  AlignmentRecord back;
  decode_record(
      std::string_view(raw).substr(40 * f.layout.stride(), f.layout.stride()),
      f.layout, back);
  EXPECT_EQ(back, f.records[0]);
  EXPECT_THROW(r.read_raw_range(0, f.records.size() + 1, raw), Error);
}

TEST(BamxFile, RawRangeAcrossShards) {
  FileFixture f;  // 200 records, shared layout
  // Hand-shard the fixture's records into three BAMX files plus manifest.
  const std::vector<std::pair<uint64_t, uint64_t>> parts = {
      {0, 80}, {80, 130}, {130, 200}};
  BamxManifest m;
  m.layout = f.layout;
  m.n_records = f.records.size();
  for (size_t s = 0; s < parts.size(); ++s) {
    std::string name = "shard-" + std::to_string(s) + ".bamx";
    BamxWriter w(f.tmp.file(name), test_header(), f.layout);
    for (uint64_t i = parts[s].first; i < parts[s].second; ++i) {
      w.write(f.records[i]);
    }
    w.close();
    m.shards.push_back(
        {name, parts[s].second - parts[s].first, parts[s].first});
  }
  std::string manifest = f.tmp.file("t.bamxm");
  m.save(manifest);

  ShardedBamxReader sharded(manifest);
  BamxReader mono(f.path);
  // Ranges fully inside a shard, touching a boundary, and spanning all
  // three shards must all match the monolithic bytes exactly.
  for (auto [beg, end] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 0}, {5, 40}, {78, 82}, {80, 130}, {60, 170}, {0, 200}}) {
    std::string a, b;
    mono.read_raw_range(beg, end, a);
    sharded.read_raw_range(beg, end, b);
    EXPECT_EQ(a, b) << "range [" << beg << ", " << end << ")";
    EXPECT_EQ(a.size(), (end - beg) * f.layout.stride());
  }
  std::string out;
  EXPECT_THROW(sharded.read_raw_range(0, 201, out), Error);
}

// ------------------------------------------------------ open_record_source

std::string open_error(const std::string& path) {
  try {
    open_record_source(path);
  } catch (const FormatError& e) {
    return e.what();
  }
  ADD_FAILURE() << "no FormatError for " << path;
  return {};
}

TEST(OpenRecordSource, EmptyFileNamedInError) {
  TempDir tmp;
  std::string path = tmp.file("zero.bamx");
  write_file(path, "");
  std::string msg = open_error(path);
  EXPECT_NE(msg.find(path), std::string::npos) << msg;
  EXPECT_NE(msg.find("the file is empty"), std::string::npos) << msg;
}

TEST(OpenRecordSource, TruncatedMagicHexDumped) {
  TempDir tmp;
  std::string path = tmp.file("two.bamx");
  write_file(path, "BA");  // 2 bytes: a plausible but cut-short magic
  std::string msg = open_error(path);
  EXPECT_NE(msg.find(path), std::string::npos) << msg;
  EXPECT_NE(msg.find("truncated magic, only 2 byte(s)"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("42 41"), std::string::npos) << msg;  // 'B' 'A' in hex
}

TEST(OpenRecordSource, UnknownMagicHexDumped) {
  TempDir tmp;
  std::string path = tmp.file("seven.bin");
  write_file(path, "NOTBAM!");  // 7 bytes, wrong magic
  std::string msg = open_error(path);
  EXPECT_NE(msg.find(path), std::string::npos) << msg;
  // Only the six sniffed bytes are reported: "NOTBAM".
  EXPECT_NE(msg.find("magic bytes: 4e 4f 54 42 41 4d"), std::string::npos)
      << msg;
}

// -------------------------------------------------------------------- BAIX

TEST(Baix, BuildSortsByRefThenPos) {
  FileFixture f;
  BamxReader r(f.path);
  BaixIndex index = BaixIndex::build(r);
  ASSERT_EQ(index.size(), f.records.size());
  for (size_t i = 1; i < index.size(); ++i) {
    const auto& a = index.entry(i - 1);
    const auto& b = index.entry(i);
    uint32_t ra = static_cast<uint32_t>(a.ref_id);
    uint32_t rb = static_cast<uint32_t>(b.ref_id);
    EXPECT_TRUE(ra < rb || (ra == rb && a.pos <= b.pos));
  }
}

TEST(Baix, QueryMatchesLinearFilter) {
  FileFixture f;
  BamxReader r(f.path);
  BaixIndex index = BaixIndex::build(r);
  for (auto [ref, beg, end] : std::vector<std::tuple<int, int, int>>{
           {0, 0, 5000}, {0, 3000, 9000}, {1, 0, 100000}, {0, 0, 1}}) {
    auto [lo, hi] = index.query(ref, beg, end);
    size_t expect = 0;
    for (const auto& rec : f.records) {
      if (rec.ref_id == ref && rec.pos >= beg && rec.pos < end) {
        ++expect;
      }
    }
    EXPECT_EQ(hi - lo, expect) << "region " << ref << ":" << beg << "-"
                               << end;
    for (size_t e = lo; e < hi; ++e) {
      EXPECT_EQ(index.entry(e).ref_id, ref);
      EXPECT_GE(index.entry(e).pos, beg);
      EXPECT_LT(index.entry(e).pos, end);
    }
  }
}

TEST(Baix, EntriesPointToCorrectRecords) {
  FileFixture f;
  BamxReader r(f.path);
  BaixIndex index = BaixIndex::build(r);
  AlignmentRecord rec;
  auto [lo, hi] = index.query(0, 0, 2000);
  for (size_t e = lo; e < hi; ++e) {
    r.read(index.entry(e).record_index, rec);
    EXPECT_EQ(rec.pos, index.entry(e).pos);
    EXPECT_EQ(rec.ref_id, index.entry(e).ref_id);
  }
}

TEST(Baix, SaveLoadRoundTrip) {
  FileFixture f;
  BamxReader r(f.path);
  BaixIndex index = BaixIndex::build(r);
  std::string path = f.tmp.file("t.baix");
  index.save(path);
  EXPECT_EQ(BaixIndex::load(path), index);
}

TEST(Baix, LoadBadMagicThrows) {
  TempDir tmp;
  std::string path = tmp.file("bad.baix");
  write_file(path, "XXXXXXXXXXXXXXXXX");
  EXPECT_THROW(BaixIndex::load(path), FormatError);
}

TEST(Baix, UnmappedSortLast) {
  std::vector<BaixEntry> entries = {
      {-1, -1, 0}, {0, 50, 1}, {1, 10, 2}, {0, 10, 3}};
  BaixIndex index = BaixIndex::from_entries(entries);
  EXPECT_EQ(index.entry(0).record_index, 3u);  // chr0:10
  EXPECT_EQ(index.entry(1).record_index, 1u);  // chr0:50
  EXPECT_EQ(index.entry(2).record_index, 2u);  // chr1:10
  EXPECT_EQ(index.entry(3).record_index, 0u);  // unmapped last
}

TEST(Baix, EmptyQuery) {
  BaixIndex index;
  auto [lo, hi] = index.query(0, 0, 100);
  EXPECT_EQ(lo, hi);
}

}  // namespace
}  // namespace ngsx::bamx
