// Tests for the BAI index: build from sorted BAM, serialization, and query
// completeness against a full scan.

#include <gtest/gtest.h>

#include <set>

#include "formats/bai.h"
#include "simdata/readsim.h"
#include "util/tempdir.h"

namespace ngsx::bai {
namespace {

using sam::AlignmentRecord;

struct Fixture {
  TempDir tmp;
  std::string bam_path;
  std::vector<AlignmentRecord> records;
  sam::SamHeader header;

  explicit Fixture(uint64_t pairs = 400, uint64_t seed = 11) {
    auto genome = simdata::ReferenceGenome::simulate(
        simdata::mouse_like_references(400000), seed);
    header = genome.header();
    simdata::ReadSimConfig cfg;
    cfg.seed = seed;
    records = simdata::simulate_alignments(genome, pairs, cfg);
    bam_path = tmp.file("f.bam");
    bam::BamFileWriter w(bam_path, header);
    for (const auto& rec : records) {
      w.write(rec);
    }
    w.close();
  }
};

/// All read names of records overlapping [beg, end) on ref, by full scan.
std::multiset<std::string> scan_overlaps(const Fixture& f, int32_t ref,
                                         int32_t beg, int32_t end) {
  std::multiset<std::string> out;
  for (const auto& rec : f.records) {
    if (rec.ref_id == ref && rec.pos < end && rec.end_pos() > beg &&
        rec.pos >= 0) {
      out.insert(rec.qname);
    }
  }
  return out;
}

/// Read names found by following index chunks and filtering by overlap.
std::multiset<std::string> query_overlaps(const Fixture& f,
                                          const BaiIndex& index, int32_t ref,
                                          int32_t beg, int32_t end) {
  std::multiset<std::string> out;
  bam::BamFileReader reader(f.bam_path);
  AlignmentRecord rec;
  for (const Chunk& chunk : index.query(ref, beg, end)) {
    reader.seek(chunk.vbeg);
    while (reader.tell() < chunk.vend && reader.next(rec)) {
      if (rec.ref_id == ref && rec.pos < end && rec.end_pos() > beg) {
        out.insert(rec.qname);
      }
    }
  }
  return out;
}

TEST(BaiIndex, BuildsForSortedBam) {
  Fixture f;
  BaiIndex index = BaiIndex::build(f.bam_path);
  EXPECT_EQ(index.num_references(), f.header.references().size());
}

TEST(BaiIndex, QueryFindsEverythingAScanFinds) {
  Fixture f;
  BaiIndex index = BaiIndex::build(f.bam_path);
  int64_t chr1_len = f.header.references()[0].length;
  for (auto [beg, end] : std::vector<std::pair<int32_t, int32_t>>{
           {0, static_cast<int32_t>(chr1_len)},
           {0, 1000},
           {5000, 15000},
           {static_cast<int32_t>(chr1_len / 2),
            static_cast<int32_t>(chr1_len / 2 + 2000)}}) {
    EXPECT_EQ(query_overlaps(f, index, 0, beg, end),
              scan_overlaps(f, 0, beg, end))
        << "region [" << beg << "," << end << ")";
  }
}

TEST(BaiIndex, QueryOtherChromosome) {
  Fixture f;
  BaiIndex index = BaiIndex::build(f.bam_path);
  int32_t len1 = static_cast<int32_t>(f.header.references()[1].length);
  EXPECT_EQ(query_overlaps(f, index, 1, 0, len1), scan_overlaps(f, 1, 0, len1));
}

TEST(BaiIndex, EmptyRegionEmptyResult) {
  Fixture f;
  BaiIndex index = BaiIndex::build(f.bam_path);
  EXPECT_TRUE(index.query(0, 100, 100).empty());   // empty interval
  EXPECT_TRUE(index.query(-1, 0, 1000).empty());   // invalid ref
  EXPECT_TRUE(index.query(99, 0, 1000).empty());   // out-of-range ref
}

TEST(BaiIndex, SaveLoadRoundTrip) {
  Fixture f;
  BaiIndex index = BaiIndex::build(f.bam_path);
  std::string path = f.tmp.file("f.bam.bai");
  index.save(path);
  BaiIndex loaded = BaiIndex::load(path);
  EXPECT_EQ(loaded, index);
}

TEST(BaiIndex, LoadBadMagicThrows) {
  TempDir tmp;
  std::string path = tmp.file("bad.bai");
  write_file(path, "NOT A BAI FILE");
  EXPECT_THROW(BaiIndex::load(path), FormatError);
}

TEST(BaiIndex, UnsortedBamRejected) {
  TempDir tmp;
  auto header = sam::SamHeader::from_references({{"chr1", 100000}});
  std::string path = tmp.file("unsorted.bam");
  {
    bam::BamFileWriter w(path, header);
    AlignmentRecord rec;
    rec.qname = "a";
    rec.ref_id = 0;
    rec.pos = 5000;
    rec.cigar = {{'M', 90}};
    w.write(rec);
    rec.qname = "b";
    rec.pos = 100;  // goes backwards
    w.write(rec);
    w.close();
  }
  EXPECT_THROW(BaiIndex::build(path), FormatError);
}

TEST(BaiIndex, MergedChunksAreOrdered) {
  Fixture f;
  BaiIndex index = BaiIndex::build(f.bam_path);
  auto chunks = index.query(0, 0, 1 << 28);
  for (size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_GT(chunks[i].vbeg, chunks[i - 1].vend);
  }
  for (const auto& c : chunks) {
    EXPECT_LT(c.vbeg, c.vend);
  }
}

TEST(BamRegionReader, MatchesBruteForceScan) {
  Fixture f;
  BaiIndex index = BaiIndex::build(f.bam_path);
  for (auto [beg, end] : std::vector<std::pair<int32_t, int32_t>>{
           {0, 5000}, {10000, 30000}, {0, 1}, {50000, 70000}}) {
    BamRegionReader reader(f.bam_path, index, 0, beg, end);
    std::multiset<std::string> got;
    AlignmentRecord rec;
    while (reader.next(rec)) {
      EXPECT_EQ(rec.ref_id, 0);
      EXPECT_LT(rec.pos, end);
      EXPECT_GT(rec.end_pos(), beg);
      got.insert(rec.qname);
    }
    EXPECT_EQ(got, scan_overlaps(f, 0, beg, end))
        << "region [" << beg << "," << end << ")";
  }
}

TEST(BamRegionReader, EmptyRegion) {
  Fixture f;
  BaiIndex index = BaiIndex::build(f.bam_path);
  BamRegionReader reader(f.bam_path, index, 0, 100, 100);
  AlignmentRecord rec;
  EXPECT_FALSE(reader.next(rec));
}

TEST(BamRegionReader, SecondChromosome) {
  Fixture f;
  BaiIndex index = BaiIndex::build(f.bam_path);
  int32_t len = static_cast<int32_t>(f.header.references()[1].length);
  BamRegionReader reader(f.bam_path, index, 1, 0, len);
  std::multiset<std::string> got;
  AlignmentRecord rec;
  while (reader.next(rec)) {
    got.insert(rec.qname);
  }
  EXPECT_EQ(got, scan_overlaps(f, 1, 0, len));
}

}  // namespace
}  // namespace ngsx::bai
