// Tests for the synthetic-data substrate: reference genome, read/alignment
// simulator, and histogram simulator. These guard the statistical structure
// every downstream experiment relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "formats/bam.h"
#include "simdata/histsim.h"
#include "simdata/readsim.h"
#include "simdata/reference.h"
#include "util/tempdir.h"

namespace ngsx::simdata {
namespace {

using sam::AlignmentRecord;

// --------------------------------------------------------------- reference

TEST(Reference, MouseLikeTableStructure) {
  auto refs = mouse_like_references(10'000'000);
  ASSERT_EQ(refs.size(), 22u);  // chr1..chr19, X, Y, M
  EXPECT_EQ(refs[0].name, "chr1");
  EXPECT_EQ(refs[21].name, "chrM");
  // chr1 is the longest autosome; chrM tiny.
  EXPECT_GT(refs[0].length, refs[18].length);  // chr1 > chr19
  EXPECT_LT(refs[21].length, refs[20].length);  // chrM < chrY
  int64_t total = 0;
  for (const auto& r : refs) {
    total += r.length;
  }
  EXPECT_NEAR(static_cast<double>(total), 10'000'000, 10'000'000 * 0.05);
}

TEST(Reference, SimulateDeterministic) {
  auto refs = mouse_like_references(100000);
  auto a = ReferenceGenome::simulate(refs, 9);
  auto b = ReferenceGenome::simulate(refs, 9);
  EXPECT_EQ(a.sequence(0), b.sequence(0));
  auto c = ReferenceGenome::simulate(refs, 10);
  EXPECT_NE(a.sequence(0), c.sequence(0));
}

TEST(Reference, SequencesMatchDeclaredLengths) {
  auto genome = ReferenceGenome::simulate(mouse_like_references(200000), 3);
  for (size_t i = 0; i < genome.references().size(); ++i) {
    EXPECT_EQ(genome.sequence(static_cast<int32_t>(i)).size(),
              static_cast<size_t>(genome.references()[i].length));
  }
}

TEST(Reference, BasesAreNucleotides) {
  auto genome = ReferenceGenome::simulate(mouse_like_references(100000), 4);
  for (char c : genome.sequence(0)) {
    EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T' || c == 'N')
        << "unexpected base " << c;
  }
}

TEST(Reference, GcContentPlausible) {
  auto genome = ReferenceGenome::simulate(mouse_like_references(400000), 6);
  const std::string& seq = genome.sequence(0);
  double gc = 0;
  double acgt = 0;
  for (char c : seq) {
    if (c == 'G' || c == 'C') {
      ++gc;
    }
    if (c != 'N') {
      ++acgt;
    }
  }
  EXPECT_GT(gc / acgt, 0.30);
  EXPECT_LT(gc / acgt, 0.60);
}

TEST(Reference, WriteFasta) {
  TempDir tmp;
  auto genome = ReferenceGenome::simulate(
      {{"chrT", 150}}, 1);
  std::string path = tmp.file("g.fasta");
  genome.write_fasta(path);
  std::string data = read_file(path);
  EXPECT_EQ(data.substr(0, 6), ">chrT\n");
  // 150 bases wrapped at 60 -> 3 sequence lines.
  EXPECT_EQ(std::count(data.begin(), data.end(), '\n'), 4);
}

// ----------------------------------------------------------------- readsim

struct SimFixture {
  ReferenceGenome genome = ReferenceGenome::simulate(
      mouse_like_references(500000), 21);
  ReadSimConfig cfg;
  std::vector<AlignmentRecord> records;

  SimFixture() {
    cfg.seed = 21;
    records = simulate_alignments(genome, 500, cfg);
  }
};

TEST(ReadSim, ProducesTwoRecordsPerPair) {
  SimFixture f;
  EXPECT_EQ(f.records.size(), 1000u);
}

TEST(ReadSim, Deterministic) {
  SimFixture f;
  auto again = simulate_alignments(f.genome, 500, f.cfg);
  EXPECT_EQ(again, f.records);
}

TEST(ReadSim, CoordinateSortedMappedFirst) {
  SimFixture f;
  bool seen_unmapped = false;
  int32_t last_ref = 0;
  int32_t last_pos = -1;
  for (const auto& rec : f.records) {
    if (rec.ref_id < 0) {
      seen_unmapped = true;
      continue;
    }
    EXPECT_FALSE(seen_unmapped) << "mapped record after unmapped block";
    if (rec.ref_id == last_ref) {
      EXPECT_GE(rec.pos, last_pos);
    } else {
      EXPECT_GT(rec.ref_id, last_ref);
    }
    last_ref = rec.ref_id;
    last_pos = rec.pos;
  }
}

TEST(ReadSim, CigarConsistentWithSequenceLength) {
  SimFixture f;
  for (const auto& rec : f.records) {
    if (rec.cigar.empty()) {
      continue;
    }
    int64_t query = 0;
    for (const auto& op : rec.cigar) {
      if (op.consumes_query()) {
        query += op.len;
      }
    }
    EXPECT_EQ(static_cast<size_t>(query), rec.seq.size())
        << "read " << rec.qname;
  }
}

TEST(ReadSim, ReadLengthHonored) {
  SimFixture f;
  for (const auto& rec : f.records) {
    EXPECT_EQ(rec.seq.size(), f.cfg.read_length);
    EXPECT_EQ(rec.qual.size(), f.cfg.read_length);
  }
}

TEST(ReadSim, PairFlagsConsistent) {
  SimFixture f;
  int read1 = 0;
  int read2 = 0;
  for (const auto& rec : f.records) {
    EXPECT_TRUE(rec.is_paired());
    EXPECT_NE((rec.flag & sam::kRead1) != 0, (rec.flag & sam::kRead2) != 0);
    read1 += (rec.flag & sam::kRead1) != 0;
    read2 += (rec.flag & sam::kRead2) != 0;
  }
  EXPECT_EQ(read1, 500);
  EXPECT_EQ(read2, 500);
}

TEST(ReadSim, MappedReadsHaveValidPositions) {
  SimFixture f;
  for (const auto& rec : f.records) {
    if (rec.is_unmapped()) {
      EXPECT_EQ(rec.ref_id, -1);
      EXPECT_TRUE(rec.cigar.empty());
      continue;
    }
    ASSERT_GE(rec.ref_id, 0);
    int64_t ref_len = f.genome.references()[static_cast<size_t>(
        rec.ref_id)].length;
    EXPECT_GE(rec.pos, 0);
    EXPECT_LE(rec.end_pos(), ref_len);
    EXPECT_FALSE(rec.cigar.empty());
  }
}

TEST(ReadSim, ProperPairsHaveOppositeStrandsAndTlen) {
  SimFixture f;
  for (const auto& rec : f.records) {
    if ((rec.flag & sam::kProperPair) == 0) {
      continue;
    }
    EXPECT_NE(rec.is_reverse(), (rec.flag & sam::kMateReverse) != 0);
    EXPECT_NE(rec.tlen, 0);
    EXPECT_EQ(rec.tlen > 0, !rec.is_reverse());
  }
}

TEST(ReadSim, MappedReadsCarryNmAndAs) {
  SimFixture f;
  for (const auto& rec : f.records) {
    if (rec.is_unmapped()) {
      continue;
    }
    EXPECT_NE(rec.find_tag("NM"), nullptr) << rec.qname;
    EXPECT_NE(rec.find_tag("AS"), nullptr) << rec.qname;
  }
}

TEST(ReadSim, QualitiesArePhred33Range) {
  SimFixture f;
  for (const auto& rec : f.records) {
    for (char q : rec.qual) {
      EXPECT_GE(q, '!');
      EXPECT_LE(q, 'J' + 1);
    }
  }
}

TEST(ReadSim, SomeStructuralVariety) {
  // With 1000 records at default rates we expect to see indels, clips,
  // unmapped reads and duplicates.
  SimFixture f;
  int with_indel = 0;
  int with_clip = 0;
  int unmapped = 0;
  int duplicates = 0;
  for (const auto& rec : f.records) {
    unmapped += rec.is_unmapped();
    duplicates += (rec.flag & sam::kDuplicate) != 0;
    for (const auto& op : rec.cigar) {
      if (op.op == 'I' || op.op == 'D') {
        ++with_indel;
        break;
      }
    }
    for (const auto& op : rec.cigar) {
      if (op.op == 'S') {
        ++with_clip;
        break;
      }
    }
  }
  EXPECT_GT(with_indel, 0);
  EXPECT_GT(with_clip, 0);
  EXPECT_GT(unmapped, 0);
  EXPECT_GT(duplicates, 0);
}

TEST(ReadSim, WriteSamAndBamAgree) {
  TempDir tmp;
  auto genome = ReferenceGenome::simulate(mouse_like_references(300000), 8);
  ReadSimConfig cfg;
  cfg.seed = 8;
  std::string sam_path = tmp.file("d.sam");
  std::string bam_path = tmp.file("d.bam");
  uint64_t n_sam = write_sam_dataset(sam_path, genome, 200, cfg);
  uint64_t n_bam = write_bam_dataset(bam_path, genome, 200, cfg);
  EXPECT_EQ(n_sam, 400u);
  EXPECT_EQ(n_bam, 400u);

  sam::SamFileReader sr(sam_path);
  ngsx::bam::BamFileReader br(bam_path);
  AlignmentRecord a;
  AlignmentRecord b;
  int count = 0;
  while (sr.next(a)) {
    ASSERT_TRUE(br.next(b));
    EXPECT_EQ(a, b) << "record " << count;
    ++count;
  }
  EXPECT_FALSE(br.next(b));
  EXPECT_EQ(count, 400);
}

// ----------------------------------------------------------------- histsim

TEST(HistSim, DimensionsAndNonNegativity) {
  HistSimConfig cfg;
  auto hist = simulate_histogram(10000, cfg);
  EXPECT_EQ(hist.size(), 10000u);
  for (double v : hist) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(HistSim, Deterministic) {
  HistSimConfig cfg;
  EXPECT_EQ(simulate_histogram(5000, cfg), simulate_histogram(5000, cfg));
  HistSimConfig other = cfg;
  other.seed = 99;
  EXPECT_NE(simulate_histogram(5000, cfg), simulate_histogram(5000, other));
}

TEST(HistSim, PeaksRaiseMaxAboveBackground) {
  HistSimConfig cfg;
  cfg.peak_density = 0.002;
  auto with_peaks = simulate_histogram(20000, cfg);
  auto null = simulate_null(20000, cfg.background_rate, cfg.seed);
  double max_peaks = *std::max_element(with_peaks.begin(), with_peaks.end());
  double max_null = *std::max_element(null.begin(), null.end());
  EXPECT_GT(max_peaks, 2 * max_null);
}

TEST(HistSim, NullMeanMatchesBackground) {
  auto null = simulate_null(50000, 4.0, 77);
  double mean = std::accumulate(null.begin(), null.end(), 0.0) / null.size();
  EXPECT_NEAR(mean, 4.0, 0.2);
}

TEST(HistSim, BatchRowsIndependent) {
  auto batch = simulate_null_batch(1000, 5, 4.0, 13);
  ASSERT_EQ(batch.size(), 5u);
  for (const auto& row : batch) {
    EXPECT_EQ(row.size(), 1000u);
  }
  EXPECT_NE(batch[0], batch[1]);
  EXPECT_NE(batch[3], batch[4]);
}

}  // namespace
}  // namespace ngsx::simdata
