// Tests for the discrete-event cluster simulator and the cost-model
// workload builders. These pin down the qualitative behaviours the figure
// reproductions depend on: linear compute scaling, per-node I/O contention
// under block placement, shared-FS saturation, and the irregular-layout
// penalty.

#include <gtest/gtest.h>

#include "cluster/clustersim.h"
#include "cluster/costmodel.h"

namespace ngsx::cluster {
namespace {

ClusterConfig test_config() {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.cores_per_node = 8;
  cfg.node_io_bw = 100e6;
  cfg.shared_fs_bw = 350e6;
  cfg.irregular_efficiency = 0.8;
  cfg.rank_startup = 0.0;
  cfg.collective_hop = 0.0;
  return cfg;
}

TEST(ClusterSim, SingleRankSumsPhases) {
  ClusterSim sim(test_config());
  RankWork w;
  w.phases = {Phase::compute(2.0), Phase::read(100e6), Phase::write(50e6)};
  double t = sim.run({w}).makespan;
  // 2.0 s compute + 1.0 s read + 0.5 s write at full node bandwidth.
  EXPECT_NEAR(t, 3.5, 1e-9);
}

TEST(ClusterSim, StartupAndCollectiveAdded) {
  ClusterConfig cfg = test_config();
  cfg.rank_startup = 0.25;
  cfg.collective_hop = 0.01;
  ClusterSim sim(cfg);
  std::vector<RankWork> work(4, RankWork{{Phase::compute(1.0)}});
  // 4 ranks -> 2 tree hops.
  EXPECT_NEAR(sim.run(work).makespan, 0.25 + 1.0 + 0.02, 1e-9);
  EXPECT_NEAR(sim.collective_cost(1), 0.0, 1e-12);
  EXPECT_NEAR(sim.collective_cost(256), 8 * 0.01, 1e-9);
}

TEST(ClusterSim, ComputeScalesLinearly) {
  ClusterSim sim(test_config());
  auto make = [&](int p) {
    return std::vector<RankWork>(
        static_cast<size_t>(p),
        RankWork{{Phase::compute(32.0 / p)}});
  };
  double t1 = sim.run(make(1)).makespan;
  double t32 = sim.run(make(32)).makespan;
  EXPECT_NEAR(t1 / t32, 32.0, 1e-6);
}

TEST(ClusterSim, NodeIoContentionCapsWithinNode) {
  // 8 ranks on one node (block placement) all reading: aggregate node
  // bandwidth is fixed, so I/O time does not improve with ranks.
  ClusterSim sim(test_config());
  auto make = [&](int p) {
    return std::vector<RankWork>(
        static_cast<size_t>(p),
        RankWork{{Phase::read(800e6 / p)}});
  };
  double t1 = sim.run(make(1)).makespan;
  double t8 = sim.run(make(8)).makespan;  // same node
  EXPECT_NEAR(t8, t1, t1 * 0.01);  // no speedup within the node
  // Crossing to more nodes adds disk paths: 32 ranks = 4 nodes, but the
  // shared FS (350 MB/s) caps the aggregate below 4 x 100 MB/s.
  double t32 = sim.run(make(32)).makespan;
  EXPECT_NEAR(t1 / t32, 3.5, 0.1);
}

TEST(ClusterSim, SharedFsCapsAggregateBandwidth) {
  ClusterConfig cfg = test_config();
  cfg.shared_fs_bw = 150e6;  // less than two nodes' worth
  ClusterSim sim(cfg);
  std::vector<RankWork> work(
      32, RankWork{{Phase::read(150e6 / 32.0)}});
  EXPECT_NEAR(sim.run(work).makespan, 1.0, 0.01);
}

TEST(ClusterSim, IrregularIoSlower) {
  ClusterSim sim(test_config());
  RankWork regular{{Phase::read(100e6, IoPattern::kRegular)}};
  RankWork irregular{{Phase::read(100e6, IoPattern::kIrregular)}};
  double tr = sim.run({regular}).makespan;
  double ti = sim.run({irregular}).makespan;
  EXPECT_NEAR(ti / tr, 1.0 / 0.8, 1e-6);
}

TEST(ClusterSim, MixedPhasesOverlapAcrossRanks) {
  // One rank computing while another reads: no mutual interference.
  ClusterConfig cfg = test_config();
  ClusterSim sim(cfg);
  std::vector<RankWork> work = {
      RankWork{{Phase::compute(1.0)}},
      RankWork{{Phase::read(100e6)}},
  };
  EXPECT_NEAR(sim.run(work).makespan, 1.0, 1e-9);
}

TEST(ClusterSim, HeterogeneousFinishTimes) {
  ClusterSim sim(test_config());
  std::vector<RankWork> work = {
      RankWork{{Phase::compute(3.0)}},
      RankWork{{Phase::compute(1.0)}},
  };
  EXPECT_NEAR(sim.run(work).makespan, 3.0, 1e-9);
}

TEST(ClusterSim, FairShareReleasesBandwidth) {
  // Two ranks on one node read different volumes; when the small one
  // finishes, the big one gets full bandwidth back.
  ClusterSim sim(test_config());
  std::vector<RankWork> work = {
      RankWork{{Phase::read(50e6)}},    // 1 s at half bandwidth
      RankWork{{Phase::read(150e6)}},   // 1 s at half + 1 s at full
  };
  EXPECT_NEAR(sim.run(work).makespan, 2.0, 1e-6);
}

TEST(ClusterSim, ZeroAmountPhasesSkipped) {
  ClusterSim sim(test_config());
  RankWork w{{Phase::read(0), Phase::compute(0.5), Phase::write(0)}};
  EXPECT_NEAR(sim.run({w}).makespan, 0.5, 1e-9);
  EXPECT_NEAR(sim.run({RankWork{}}).makespan, 0.0, 1e-9);
}

TEST(ClusterSim, TooManyRanksRejected) {
  ClusterSim sim(test_config());  // 32 cores
  std::vector<RankWork> work(33, RankWork{{Phase::compute(1.0)}});
  EXPECT_THROW(sim.run(work), Error);
}

TEST(ClusterSim, BlockPlacement) {
  ClusterSim sim(test_config());
  EXPECT_EQ(sim.node_of(0), 0);
  EXPECT_EQ(sim.node_of(7), 0);
  EXPECT_EQ(sim.node_of(8), 1);
  EXPECT_EQ(sim.node_of(31), 3);
}

TEST(ClusterSim, SpeedupSeriesMonotoneForComputeBound) {
  ClusterSim sim(test_config());
  auto series = speedup_series(sim, {1, 2, 4, 8, 16, 32}, [&](int p) {
    return std::vector<RankWork>(
        static_cast<size_t>(p), RankWork{{Phase::compute(64.0 / p)}});
  });
  ASSERT_EQ(series.size(), 6u);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].speedup, series[i - 1].speedup);
  }
  EXPECT_NEAR(series.back().speedup, 32.0, 0.5);
}

// ------------------------------------------------------- workload builders

TEST(CostModelBuilders, ConversionWorkSplitsEvenly) {
  ConversionJob job;
  job.records = 1000;
  job.input_bytes = 4000;
  job.cpu_per_record = 0.001;
  job.out_bytes_per_record = 2.0;
  job.read_pattern = IoPattern::kIrregular;
  auto work = conversion_work(job, 4);
  ASSERT_EQ(work.size(), 4u);
  for (const auto& rank_work : work) {
    ASSERT_EQ(rank_work.phases.size(), 3u);
    EXPECT_EQ(rank_work.phases[0].kind, Phase::Kind::kRead);
    EXPECT_DOUBLE_EQ(rank_work.phases[0].amount, 1000.0);
    EXPECT_EQ(rank_work.phases[0].pattern, IoPattern::kIrregular);
    EXPECT_DOUBLE_EQ(rank_work.phases[1].amount, 0.25);
    EXPECT_DOUBLE_EQ(rank_work.phases[2].amount, 500.0);
  }
}

TEST(CostModelBuilders, KernelWork) {
  auto work = kernel_work(10.0, 100.0, 5);
  ASSERT_EQ(work.size(), 5u);
  EXPECT_DOUBLE_EQ(work[0].phases[1].amount, 2.0);
  EXPECT_DOUBLE_EQ(work[0].phases[0].amount, 20.0);
}

// The full calibration pass is exercised by the benches (it takes seconds);
// here a miniature calibration validates the plumbing and basic sanity.
TEST(CostModel, MiniCalibrationSane) {
  ConversionCosts costs = calibrate_conversion(/*sample_pairs=*/300,
                                               /*seed=*/2);
  EXPECT_GT(costs.sam_parse, 0.0);
  EXPECT_GT(costs.bam_decode, 0.0);
  EXPECT_GT(costs.bamx_decode, 0.0);
  EXPECT_GT(costs.bamtools_adapt, costs.bam_decode);  // adaptation overhead
  EXPECT_GT(costs.sam_bytes_per_record, 100.0);  // ~90bp reads + fields
  EXPECT_LT(costs.bam_bytes_per_record, costs.sam_bytes_per_record);
  EXPECT_GT(costs.bamx_bytes_per_record, 0.0);
  for (auto format : {core::TargetFormat::kBed, core::TargetFormat::kFastq}) {
    EXPECT_GT(costs.format_cpu.at(format), 0.0);
    EXPECT_GT(costs.out_bytes_per_record.at(format), 0.0);
  }
  // BEDGRAPH rows are the smallest of the text targets (paper's Fig 6).
  EXPECT_LT(costs.out_bytes_per_record.at(core::TargetFormat::kBedgraph),
            costs.out_bytes_per_record.at(core::TargetFormat::kBed));
  EXPECT_LT(costs.out_bytes_per_record.at(core::TargetFormat::kBedgraph),
            costs.out_bytes_per_record.at(core::TargetFormat::kFasta));
}

TEST(CostModel, MiniStatsCalibrationSane) {
  StatsCosts costs = calibrate_stats(/*sample_bins=*/400, /*b=*/10,
                                     /*seed=*/2);
  EXPECT_GT(costs.nlmeans_per_point_op, 0.0);
  EXPECT_GT(costs.fdr_fused_per_bin, 0.0);
  EXPECT_GT(costs.fdr_two_pass_per_bin, 0.0);
  EXPECT_EQ(costs.calibrated_b, 10);
}

}  // namespace
}  // namespace ngsx::cluster
