// Tests for the serving subsystem (src/serve): byte-identity of served
// payloads against the one-shot converters, deterministic scheduler
// behavior (coalescing, admission control, deadlines, shutdown drain),
// block-cache accounting, the wire protocol, serve.* metrics, the
// periodic metrics flusher, and a concurrent-query stress over one shared
// session (the TSan job runs this binary).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <mutex>
#include <thread>

#include "core/convert.h"
#include "core/session.h"
#include "formats/bam.h"
#include "obs/metrics.h"
#include "serve/cache.h"
#include "serve/metrics_flush.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "simdata/readsim.h"
#include "util/tempdir.h"

namespace ngsx::serve {
namespace {

using core::ConversionSession;
using core::ConvertOptions;
using core::Region;
using core::SessionOptions;
using core::TargetFormat;
using sam::AlignmentRecord;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

struct ServeData {
  TempDir tmp;
  simdata::ReferenceGenome genome;
  std::vector<AlignmentRecord> records;
  std::string bam, bamx, baix, baix2;

  explicit ServeData(uint64_t pairs = 250, uint64_t seed = 7)
      : genome(simdata::ReferenceGenome::simulate(
            simdata::mouse_like_references(400000), seed)) {
    simdata::ReadSimConfig cfg;
    cfg.seed = seed;
    records = simdata::simulate_alignments(genome, pairs, cfg);
    bam = tmp.file("in.bam");
    bam::BamFileWriter w(bam, genome.header());
    for (const auto& r : records) {
      w.write(r);
    }
    w.close();
    bamx = tmp.file("in.bamx");
    baix = tmp.file("in.baix");
    baix2 = tmp.file("in.baix2");
    core::preprocess_bam(bam, bamx, baix);
    core::build_baix2(bamx, baix2);
  }
};

/// One-shot converter ground truth: single-rank part file bytes.
std::string convert_reference(const ServeData& d, const std::string& out_dir,
                              TargetFormat format,
                              std::optional<Region> region,
                              bool include_header = true) {
  ConvertOptions opt;
  opt.format = format;
  opt.ranks = 1;
  opt.include_header = include_header;
  auto stats = core::convert_bamx(d.bamx, d.baix, out_dir, opt, region);
  return read_file(stats.outputs.at(0));
}

std::string convert_filtered_reference(const ServeData& d,
                                       const std::string& out_dir,
                                       TargetFormat format,
                                       const Region& region,
                                       baix2::RegionMode mode,
                                       const baix2::Filter& filter) {
  ConvertOptions opt;
  opt.format = format;
  opt.ranks = 1;
  auto stats = core::convert_bamx_filtered(d.bamx, d.baix2, out_dir, opt,
                                           region, mode, filter);
  return read_file(stats.outputs.at(0));
}

ServeRequest make_request(const Region& region,
                          TargetFormat format = TargetFormat::kSam) {
  ServeRequest request;
  request.region = region;
  request.format = format;
  return request;
}

/// Gate for deterministic scheduler tests: every job execution signals
/// `executions` then parks until release().
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> executions{0};

  std::function<void()> hook() {
    return [this] {
      executions.fetch_add(1);
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return open; });
    };
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void wait_executions(int n) {
    while (executions.load() < n) {
      std::this_thread::sleep_for(milliseconds(1));
    }
  }
};

// --------------------------------------------------------- byte identity

TEST(ServeByteIdentity, StartWithinRegionMatchesConvertBamx) {
  ServeData d;
  ConversionSession session(SessionOptions{d.bamx, d.baix, {}});
  exec::Pool pool(2);
  Scheduler scheduler(session, pool, {});

  const Region region = session.parse("chr1:1-200000");
  int checked = 0;
  for (TargetFormat format :
       {TargetFormat::kSam, TargetFormat::kBed, TargetFormat::kFastq,
        TargetFormat::kJson}) {
    ServeResult result = scheduler.submit(make_request(region, format));
    ASSERT_TRUE(result.ok) << result.error;
    const std::string expected = convert_reference(
        d, d.tmp.file("ref-" + std::to_string(checked)), format, region);
    EXPECT_EQ(result.payload, expected)
        << "format " << core::target_format_name(format);
    if (format == TargetFormat::kSam) {
      EXPECT_GT(result.records, 0u) << "empty region defeats the test";
    }
    ++checked;
  }
}

TEST(ServeByteIdentity, WholeReferenceAndNoHeader) {
  ServeData d;
  ConversionSession session(SessionOptions{d.bamx, d.baix, {}});
  exec::Pool pool(2);
  Scheduler scheduler(session, pool, {});

  const Region region = session.parse("chr1");
  ServeRequest request = make_request(region, TargetFormat::kSam);
  request.include_header = false;
  ServeResult result = scheduler.submit(request);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.payload,
            convert_reference(d, d.tmp.file("ref-nh"), TargetFormat::kSam,
                              region, /*include_header=*/false));
}

TEST(ServeByteIdentity, OverlapAndFiltersMatchConvertBamxFiltered) {
  ServeData d;
  ConversionSession session(SessionOptions{d.bamx, {}, d.baix2});
  exec::Pool pool(2);
  Scheduler scheduler(session, pool, {});

  const Region region = session.parse("chr1:5000-250000");
  baix2::Filter filter;
  filter.min_mapq = 20;
  filter.reverse_strand = true;
  filter.include_duplicates = false;

  ServeRequest request = make_request(region, TargetFormat::kSam);
  request.mode = baix2::RegionMode::kOverlap;
  request.filter = filter;
  ServeResult result = scheduler.submit(request);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.payload, convert_filtered_reference(
                                d, d.tmp.file("ref-filt"), TargetFormat::kSam,
                                region, baix2::RegionMode::kOverlap, filter));
}

TEST(ServeByteIdentity, ShardedManifestSource) {
  ServeData d;
  const std::string manifest = d.tmp.file("in.bamxm");
  const std::string par_baix = d.tmp.file("par.baix");
  core::PreprocessOptions popt;
  popt.threads = 3;
  popt.shards = 3;
  core::preprocess_bam_parallel(d.bam, manifest, par_baix, popt);

  ConversionSession session(SessionOptions{manifest, par_baix, {}});
  exec::Pool pool(2);
  Scheduler scheduler(session, pool, {});

  const Region region = session.parse("chr2:1-300000");
  ServeResult result = scheduler.submit(make_request(region));
  ASSERT_TRUE(result.ok) << result.error;
  // The sharded BAMX data is byte-identical to the monolithic one, so the
  // monolithic converter is still the ground truth.
  EXPECT_EQ(result.payload,
            convert_reference(d, d.tmp.file("ref-sharded"), TargetFormat::kSam,
                              region));
}

// ------------------------------------------------------------- scheduler

TEST(ServeScheduler, CoalescesOverlappingQueuedRequests) {
  ServeData d;
  obs::enable_metrics();
  obs::reset_metrics();
  ConversionSession session(SessionOptions{d.bamx, d.baix, {}});
  exec::Pool pool(1);  // one consumer -> deterministic queue states
  Gate gate;
  SchedulerOptions opt;
  opt.on_execute = gate.hook();
  Scheduler scheduler(session, pool, opt);

  // A (different format group) occupies the only consumer at the gate.
  const Region blocker_region = session.parse("chr1:1-1000");
  auto a = scheduler.submit_async(make_request(blocker_region,
                                               TargetFormat::kBed));
  gate.wait_executions(1);

  // B and C overlap in the same group: C must ride B's queued job.
  const Region b_region = session.parse("chr1:1000-30000");
  const Region c_region = session.parse("chr1:20000-60000");
  auto b = scheduler.submit_async(make_request(b_region));
  auto c = scheduler.submit_async(make_request(c_region));
  EXPECT_EQ(scheduler.queued(), 1u);  // one job carries both waiters

  gate.release();
  ServeResult ra = a.get();
  ServeResult rb = b.get();
  ServeResult rc = c.get();
  ASSERT_TRUE(ra.ok && rb.ok && rc.ok)
      << ra.error << " / " << rb.error << " / " << rc.error;

  // One execution for A, ONE for B∪C (coalescing), not three.
  EXPECT_EQ(gate.executions.load(), 2);
  EXPECT_FALSE(rb.coalesced);
  EXPECT_TRUE(rc.coalesced);

  // Fan-out byte identity: each waiter's payload equals its own dedicated
  // conversion even though the records were fetched+formatted once.
  EXPECT_EQ(rb.payload, convert_reference(d, d.tmp.file("ref-b"),
                                          TargetFormat::kSam, b_region));
  EXPECT_EQ(rc.payload, convert_reference(d, d.tmp.file("ref-c"),
                                          TargetFormat::kSam, c_region));
  EXPECT_GT(rb.records, 0u);

  const obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap.counter_value("serve.requests"), 3u);
  EXPECT_EQ(snap.counter_value("serve.coalesced"), 1u);
}

TEST(ServeScheduler, AdmissionRejectsWithTypedBackpressure) {
  ServeData d;
  obs::enable_metrics();
  obs::reset_metrics();
  ConversionSession session(SessionOptions{d.bamx, d.baix, {}});
  exec::Pool pool(1);
  Gate gate;
  SchedulerOptions opt;
  opt.max_queued = 2;
  opt.on_execute = gate.hook();
  Scheduler scheduler(session, pool, opt);

  const Region region = session.parse("chr1:1-1000");
  auto running = scheduler.submit_async(make_request(region,
                                                     TargetFormat::kBed));
  gate.wait_executions(1);

  // Different formats -> different groups, nothing coalesces; the queue
  // holds exactly max_queued jobs.
  auto q1 = scheduler.submit_async(make_request(region, TargetFormat::kSam));
  auto q2 = scheduler.submit_async(make_request(region, TargetFormat::kFastq));
  EXPECT_EQ(scheduler.queued(), 2u);

  // The N+1st is rejected immediately with the typed backpressure error.
  ServeResult rejected =
      scheduler.submit(make_request(region, TargetFormat::kJson));
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.reject, RejectReason::kBackpressure);
  EXPECT_EQ(reject_code(rejected.reject), "backpressure");

  gate.release();
  EXPECT_TRUE(running.get().ok);
  EXPECT_TRUE(q1.get().ok);
  EXPECT_TRUE(q2.get().ok);

  const obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap.counter_value("serve.admission_rejects"), 1u);
  EXPECT_EQ(snap.counter_value("serve.requests"), 4u);
}

TEST(ServeScheduler, ExpiredDeadlineRejectedWithoutExecution) {
  ServeData d;
  ConversionSession session(SessionOptions{d.bamx, d.baix, {}});
  exec::Pool pool(1);
  Gate gate;
  SchedulerOptions opt;
  opt.on_execute = gate.hook();
  Scheduler scheduler(session, pool, opt);

  const Region region = session.parse("chr1:1-1000");
  auto running = scheduler.submit_async(make_request(region,
                                                     TargetFormat::kBed));
  gate.wait_executions(1);

  ServeRequest late = make_request(region);
  late.deadline = steady_clock::now() - milliseconds(1);  // already expired
  auto future = scheduler.submit_async(late);

  gate.release();
  EXPECT_TRUE(running.get().ok);
  ServeResult result = future.get();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.reject, RejectReason::kDeadline);
}

TEST(ServeScheduler, ShutdownDrainsAcceptedThenRejectsNew) {
  ServeData d;
  ConversionSession session(SessionOptions{d.bamx, d.baix, {}});
  exec::Pool pool(2);
  Scheduler scheduler(session, pool, {});

  const Region region = session.parse("chr1:1-100000");
  auto accepted = scheduler.submit_async(make_request(region));
  scheduler.shutdown();  // blocks until the queue is drained

  ServeResult drained = accepted.get();
  EXPECT_TRUE(drained.ok) << drained.error;  // accepted work is never dropped

  ServeResult rejected = scheduler.submit(make_request(region));
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.reject, RejectReason::kShutdown);
  EXPECT_EQ(reject_code(rejected.reject), "shutting-down");
}

TEST(ServeScheduler, BamTargetIsBadRequest) {
  ServeData d;
  ConversionSession session(SessionOptions{d.bamx, d.baix, {}});
  exec::Pool pool(1);
  Scheduler scheduler(session, pool, {});
  ServeResult result = scheduler.submit(
      make_request(session.parse("chr1:1-1000"), TargetFormat::kBam));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.reject, RejectReason::kBadRequest);
}

TEST(ServeScheduler, FiltersWithoutBaix2AreBadRequest) {
  ServeData d;
  ConversionSession session(SessionOptions{d.bamx, d.baix, {}});
  exec::Pool pool(1);
  Scheduler scheduler(session, pool, {});
  ServeRequest request = make_request(session.parse("chr1:1-1000"));
  request.mode = baix2::RegionMode::kOverlap;  // needs interval ends
  ServeResult result = scheduler.submit(request);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.reject, RejectReason::kBadRequest);
}

// ------------------------------------------------------------ block cache

TEST(ServeCache, HitMissEvictionAccounting) {
  ServeData d;
  bamx::BamxReader source(d.bamx);
  const uint64_t stride = source.layout().stride();
  const uint64_t rpb = 16;
  // Budget of exactly two full blocks.
  BlockCache cache(static_cast<size_t>(2 * rpb * stride), rpb);

  auto b0 = cache.block(source, 0);
  EXPECT_EQ(b0->size(), rpb * stride);
  std::string direct;
  source.read_raw_range(0, rpb, direct);
  EXPECT_EQ(*b0, direct);

  cache.block(source, 0);  // hit
  cache.block(source, 1);  // miss; resident {0, 1}
  cache.block(source, 2);  // miss; evicts 0 (LRU is block 0)
  cache.block(source, 1);  // hit
  cache.block(source, 0);  // miss again (was evicted)

  BlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.blocks, 2u);
  EXPECT_LE(stats.bytes, 2 * rpb * stride);
}

TEST(ServeCache, CachedFetcherDecodesIdentically) {
  ServeData d;
  bamx::BamxReader source(d.bamx);
  BlockCache cache(1 << 20, 8);
  CachedFetcher fetcher(source, cache);
  AlignmentRecord direct, cached;
  const std::vector<uint64_t> probes = {0, 7, 8, 63, source.num_records() - 1};
  for (uint64_t i : probes) {
    source.read(i, direct);
    fetcher.fetch(i, cached);
    EXPECT_EQ(direct, cached) << "record " << i;
  }
}

TEST(ServeCache, CacheHitsAndMissesObservable) {
  ServeData d;
  obs::enable_metrics();
  obs::reset_metrics();
  ConversionSession session(SessionOptions{d.bamx, d.baix, {}});
  exec::Pool pool(2);
  ServerOptions opt;
  opt.cache_bytes = 8 << 20;
  opt.records_per_block = 32;
  Server server(session, pool, opt);

  const std::string line = "CONVERT chr1:1-200000 sam";
  const std::string first = server.handle_line(line);
  const std::string second = server.handle_line(line);  // same hot blocks
  EXPECT_EQ(first, second);

  const obs::Snapshot snap = obs::snapshot();
  EXPECT_GT(snap.counter_value("serve.cache.misses"), 0u);
  EXPECT_GE(snap.counter_value("serve.cache.hits"),
            snap.counter_value("serve.cache.misses"));
  ASSERT_NE(server.cache(), nullptr);
  EXPECT_GT(server.cache()->stats().hits, 0u);
}

// -------------------------------------------------------------- protocol

TEST(ServeProtocol, ParsesConvertOptions) {
  ProtoRequest request = parse_request(
      "CONVERT chr1:100-200 fastq mode=overlap mapq=30 strand=rev nodup "
      "noheader deadline-ms=250");
  EXPECT_EQ(request.verb, ProtoRequest::Verb::kConvert);
  EXPECT_EQ(request.region, "chr1:100-200");
  EXPECT_EQ(request.format, TargetFormat::kFastq);
  EXPECT_EQ(request.mode, baix2::RegionMode::kOverlap);
  EXPECT_EQ(request.filter.min_mapq, 30);
  ASSERT_TRUE(request.filter.reverse_strand.has_value());
  EXPECT_TRUE(*request.filter.reverse_strand);
  EXPECT_FALSE(request.filter.include_duplicates);
  EXPECT_FALSE(request.include_header);
  ASSERT_TRUE(request.deadline_ms.has_value());
  EXPECT_EQ(*request.deadline_ms, 250);
}

TEST(ServeProtocol, DefaultsAndSimpleVerbs) {
  ProtoRequest convert = parse_request("CONVERT chr2 sam");
  EXPECT_EQ(convert.mode, baix2::RegionMode::kStartWithin);
  EXPECT_TRUE(convert.include_header);
  EXPECT_FALSE(convert.deadline_ms.has_value());
  EXPECT_EQ(parse_request("STATS").verb, ProtoRequest::Verb::kStats);
  EXPECT_EQ(parse_request("PING\r").verb, ProtoRequest::Verb::kPing);
  EXPECT_EQ(parse_request("SHUTDOWN").verb, ProtoRequest::Verb::kShutdown);
  EXPECT_EQ(parse_request("QUIT").verb, ProtoRequest::Verb::kQuit);
}

TEST(ServeProtocol, RejectsMalformedLines) {
  EXPECT_THROW(parse_request(""), UsageError);
  EXPECT_THROW(parse_request("FETCH chr1 sam"), UsageError);
  EXPECT_THROW(parse_request("CONVERT chr1"), UsageError);
  EXPECT_THROW(parse_request("CONVERT chr1 sam mode=sideways"), UsageError);
  EXPECT_THROW(parse_request("CONVERT chr1 sam strand=up"), UsageError);
  EXPECT_THROW(parse_request("CONVERT chr1 sam mapq=many"), FormatError);
  EXPECT_THROW(parse_request("CONVERT chr1 sam turbo"), UsageError);
}

TEST(ServeProtocol, ResponseFraming) {
  EXPECT_EQ(ok_response("abc\n"), "OK 4\nabc\n");
  EXPECT_EQ(ok_response(""), "OK 0\n");
  EXPECT_EQ(err_response("bad-request", "no\nnewlines"),
            "ERR bad-request no newlines\n");
}

// ---------------------------------------------------------------- server

TEST(ServeServer, HandleLineEndToEnd) {
  ServeData d;
  obs::enable_metrics();
  obs::reset_metrics();
  ConversionSession session(SessionOptions{d.bamx, d.baix, d.baix2});
  exec::Pool pool(2);
  Server server(session, pool, {});

  EXPECT_EQ(server.handle_line("PING"), "OK 5\npong\n");

  // CONVERT matches the one-shot converter byte for byte, behind framing.
  const Region region = session.parse("chr1:1-150000");
  const std::string expected =
      convert_reference(d, d.tmp.file("ref-srv"), TargetFormat::kSam, region);
  EXPECT_EQ(server.handle_line("CONVERT chr1:1-150000 sam"),
            ok_response(expected));

  // Errors are typed single-line responses.
  EXPECT_TRUE(server.handle_line("NONSENSE").rfind("ERR bad-request", 0) == 0);
  EXPECT_TRUE(server.handle_line("CONVERT chr99 sam")
                  .rfind("ERR bad-request", 0) == 0);
  EXPECT_TRUE(server.handle_line("CONVERT chr1:1-10 bam")
                  .rfind("ERR bad-request", 0) == 0);

  // STATS serves the documented schema with serve.* counters present.
  const std::string stats = server.handle_line("STATS");
  EXPECT_TRUE(stats.rfind("OK ", 0) == 0);
  EXPECT_NE(stats.find("ngsx.metrics.v1"), std::string::npos);
  EXPECT_NE(stats.find("serve.requests"), std::string::npos);

  // QUIT is a silent connection close; SHUTDOWN answers then flags.
  EXPECT_EQ(server.handle_line("QUIT"), "");
  EXPECT_FALSE(server.shutdown_requested());
  EXPECT_EQ(server.handle_line("SHUTDOWN"), "OK 4\nbye\n");
  EXPECT_TRUE(server.shutdown_requested());

  const obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap.counter_value("serve.requests"), 2u);  // sam + bam attempts
  const obs::HistogramSnapshot* latency =
      snap.histogram_value("serve.request_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->count, 1u);
}

// -------------------------------------------------------- metrics flusher

TEST(ServeMetricsFlusher, PeriodicAtomicSnapshots) {
  TempDir tmp;
  obs::enable_metrics();
  const std::string path = tmp.file("metrics.json");
  {
    MetricsFlusher flusher(path, milliseconds(5));
    while (flusher.flushes() < 3) {
      std::this_thread::sleep_for(milliseconds(2));
    }
    flusher.stop();
    const std::string snapshot = read_file(path);
    EXPECT_NE(snapshot.find("ngsx.metrics.v1"), std::string::npos);
    EXPECT_EQ(snapshot.back(), '\n');
  }
  // Atomic commit: no staging files survive next to the target.
  size_t entries = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(tmp.path())) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // just metrics.json
}

// ------------------------------------------------- concurrent-query stress

// Shared-session thread-safety: many threads hammer one Server (and thus
// one ConversionSession, Scheduler, BlockCache) with mixed requests. The
// TSan CI job runs this to certify the documented const-thread-safety.
TEST(ServeStress, ConcurrentQueriesOverSharedSession) {
  ServeData d(200, 11);
  ConversionSession session(SessionOptions{d.bamx, d.baix, d.baix2});
  exec::Pool pool(4);
  ServerOptions opt;
  opt.cache_bytes = 4 << 20;
  opt.records_per_block = 64;
  opt.max_queued = 256;
  Server server(session, pool, opt);

  const std::string expected_sam = server.handle_line("CONVERT chr1 sam");
  const std::string expected_bed =
      server.handle_line("CONVERT chr1:1-300000 bed mode=overlap");
  ASSERT_TRUE(expected_sam.rfind("OK ", 0) == 0);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 24;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if ((t + i) % 2 == 0) {
          if (server.handle_line("CONVERT chr1 sam") != expected_sam) {
            mismatches.fetch_add(1);
          }
        } else {
          if (server.handle_line("CONVERT chr1:1-300000 bed mode=overlap") !=
              expected_bed) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace ngsx::serve
