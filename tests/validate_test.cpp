// Tests for the SAM/BAM validator.

#include <gtest/gtest.h>

#include <algorithm>

#include "formats/bam.h"
#include "formats/validate.h"
#include "simdata/readsim.h"
#include "util/tempdir.h"

namespace ngsx::validate {
namespace {

using sam::AlignmentRecord;
using sam::SamHeader;

SamHeader v_header() {
  return SamHeader::from_references({{"chr1", 10000}, {"chr2", 5000}});
}

AlignmentRecord clean_record() {
  AlignmentRecord rec;
  rec.qname = "ok.read.1";
  rec.flag = sam::kPaired | sam::kRead1;
  rec.ref_id = 0;
  rec.pos = 100;
  rec.mapq = 60;
  rec.cigar = sam::parse_cigar("50M");
  rec.mate_ref_id = 0;
  rec.mate_pos = 300;
  rec.tlen = 250;
  rec.seq = std::string(50, 'A');
  rec.qual = std::string(50, 'I');
  return rec;
}

bool has_rule(const Report& report, std::string_view rule) {
  return std::any_of(report.issues.begin(), report.issues.end(),
                     [&](const Issue& i) { return i.rule == rule; });
}

Report check(const AlignmentRecord& rec) {
  Report report;
  validate_record(rec, v_header(), 0, {}, report);
  return report;
}

TEST(ValidateRecord, CleanRecordPasses) {
  Report report = check(clean_record());
  EXPECT_EQ(report.error_count, 0u);
  EXPECT_EQ(report.warning_count, 0u);
}

TEST(ValidateRecord, QnameRules) {
  AlignmentRecord rec = clean_record();
  rec.qname.clear();
  EXPECT_TRUE(has_rule(check(rec), "QNAME_EMPTY"));
  rec.qname = std::string(300, 'n');
  EXPECT_TRUE(has_rule(check(rec), "QNAME_TOO_LONG"));
  rec.qname = "bad name";  // space
  EXPECT_TRUE(has_rule(check(rec), "QNAME_BAD_CHAR"));
  rec.qname = "bad@name";
  EXPECT_TRUE(has_rule(check(rec), "QNAME_BAD_CHAR"));
}

TEST(ValidateRecord, FlagConsistency) {
  AlignmentRecord rec = clean_record();
  rec.flag = sam::kRead1;  // pair bits without kPaired
  EXPECT_TRUE(has_rule(check(rec), "PAIRED_FLAGS_ON_UNPAIRED"));
  rec.flag = sam::kPaired | sam::kRead1 | sam::kRead2;
  EXPECT_TRUE(has_rule(check(rec), "BOTH_MATE_NUMBERS"));
}

TEST(ValidateRecord, UnmappedRules) {
  AlignmentRecord rec;
  rec.qname = "u";
  rec.flag = sam::kUnmapped;
  rec.mapq = 30;
  rec.cigar = sam::parse_cigar("10M");
  Report report = check(rec);
  EXPECT_TRUE(has_rule(report, "MAPQ_ON_UNMAPPED"));
  EXPECT_TRUE(has_rule(report, "CIGAR_ON_UNMAPPED"));
  EXPECT_EQ(report.error_count, 0u);  // both are warnings
}

TEST(ValidateRecord, PlacementRules) {
  AlignmentRecord rec = clean_record();
  rec.ref_id = 7;  // no such reference
  EXPECT_TRUE(has_rule(check(rec), "RNAME_INVALID"));
  rec = clean_record();
  rec.pos = 20000;  // beyond chr1
  EXPECT_TRUE(has_rule(check(rec), "POS_PAST_END"));
  rec = clean_record();
  rec.pos = 9990;  // alignment spills past the end
  EXPECT_TRUE(has_rule(check(rec), "ALIGNMENT_PAST_END"));
  rec = clean_record();
  rec.pos = -1;
  EXPECT_TRUE(has_rule(check(rec), "POS_MISSING"));
  rec = clean_record();
  rec.cigar.clear();
  EXPECT_TRUE(has_rule(check(rec), "CIGAR_MISSING"));
  rec = clean_record();
  rec.mate_ref_id = 9;
  EXPECT_TRUE(has_rule(check(rec), "RNEXT_INVALID"));
}

TEST(ValidateRecord, CigarRules) {
  AlignmentRecord rec = clean_record();
  rec.cigar = sam::parse_cigar("30M");  // SEQ is 50 bases
  EXPECT_TRUE(has_rule(check(rec), "CIGAR_SEQ_MISMATCH"));
  rec = clean_record();
  rec.cigar = {{'M', 25}, {'M', 25}};
  EXPECT_TRUE(has_rule(check(rec), "CIGAR_ADJACENT_SAME_OP"));
  rec = clean_record();
  rec.cigar = {{'M', 25}, {'H', 2}, {'M', 25}};
  EXPECT_TRUE(has_rule(check(rec), "CIGAR_INTERNAL_HARDCLIP"));
  rec = clean_record();
  rec.cigar = {{'M', 0}, {'M', 50}};
  EXPECT_TRUE(has_rule(check(rec), "CIGAR_ZERO_LENGTH_OP"));
}

TEST(ValidateRecord, SeqQualRules) {
  AlignmentRecord rec = clean_record();
  rec.qual = "II";  // mismatched length
  EXPECT_TRUE(has_rule(check(rec), "SEQ_QUAL_MISMATCH"));
  rec = clean_record();
  rec.qual[10] = ' ';  // below '!'
  EXPECT_TRUE(has_rule(check(rec), "QUAL_BAD_CHAR"));
}

TEST(ValidateRecord, DuplicateTags) {
  AlignmentRecord rec = clean_record();
  rec.tags.push_back(sam::parse_aux("NM:i:1"));
  rec.tags.push_back(sam::parse_aux("NM:i:2"));
  EXPECT_TRUE(has_rule(check(rec), "DUPLICATE_TAG"));
}

TEST(ValidateFile, SimulatedDatasetIsClean) {
  TempDir tmp;
  auto genome = simdata::ReferenceGenome::simulate(
      simdata::mouse_like_references(300000), 3);
  simdata::ReadSimConfig cfg;
  cfg.seed = 3;
  simdata::write_bam_dataset(tmp.file("d.bam"), genome, 300, cfg);
  Options options;
  options.check_sort_order = true;
  Report report = validate_file(tmp.file("d.bam"), options);
  EXPECT_EQ(report.records_checked, 600u);
  EXPECT_TRUE(report.ok()) << (report.issues.empty()
                                   ? "?"
                                   : report.issues[0].rule + ": " +
                                         report.issues[0].message);
  EXPECT_EQ(report.warning_count, 0u);
}

TEST(ValidateFile, SamAndBamAgree) {
  TempDir tmp;
  SamHeader header = v_header();
  AlignmentRecord bad = clean_record();
  bad.cigar = sam::parse_cigar("10M");  // mismatch vs 50-base SEQ
  {
    sam::SamFileWriter w(tmp.file("d.sam"), header);
    w.write(bad);
    w.close();
    bam::BamFileWriter b(tmp.file("d.bam"), header);
    b.write(bad);
    b.close();
  }
  Report from_sam = validate_file(tmp.file("d.sam"));
  Report from_bam = validate_file(tmp.file("d.bam"));
  EXPECT_EQ(from_sam.error_count, from_bam.error_count);
  EXPECT_TRUE(has_rule(from_sam, "CIGAR_SEQ_MISMATCH"));
  EXPECT_TRUE(has_rule(from_bam, "CIGAR_SEQ_MISMATCH"));
}

TEST(ValidateFile, SortOrderCheck) {
  TempDir tmp;
  SamHeader header = v_header();
  AlignmentRecord a = clean_record();
  a.pos = 500;
  AlignmentRecord b = clean_record();
  b.pos = 100;
  {
    bam::BamFileWriter w(tmp.file("d.bam"), header);
    w.write(a);
    w.write(b);
    w.close();
  }
  Options unordered;
  EXPECT_TRUE(validate_file(tmp.file("d.bam"), unordered).ok());
  Options ordered;
  ordered.check_sort_order = true;
  Report report = validate_file(tmp.file("d.bam"), ordered);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, "OUT_OF_ORDER"));
}

TEST(ValidateFile, IssueCapDoesNotStopCounting) {
  TempDir tmp;
  SamHeader header = v_header();
  AlignmentRecord bad = clean_record();
  bad.qname = "has space";
  {
    bam::BamFileWriter w(tmp.file("d.bam"), header);
    for (int i = 0; i < 50; ++i) {
      w.write(bad);
    }
    w.close();
  }
  Options options;
  options.max_recorded_issues = 5;
  Report report = validate_file(tmp.file("d.bam"), options);
  EXPECT_EQ(report.issues.size(), 5u);
  EXPECT_EQ(report.error_count, 50u);
}

}  // namespace
}  // namespace ngsx::validate
