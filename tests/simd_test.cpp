// Byte-identity tests for the vectorized byte-scan kernels (util/simd.h).
// Every dispatched and named implementation must agree with the scalar
// reference on every input; the cases below concentrate on the places
// wide kernels go wrong: matches straddling the 8/16/32-byte step
// boundary, unaligned buffer starts, tails shorter than one vector, and
// empty inputs.

#include <gtest/gtest.h>
#include <zlib.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/simd.h"
#include "util/strutil.h"

namespace ngsx::simd {
namespace {

// Runs `check` for a grid of (length, alignment offset) pairs over a
// randomized haystack that never contains the probe bytes, so tests can
// plant matches at exact positions.
template <typename Fn>
void for_each_case(Fn check) {
  Rng rng(20240809);
  // 15/16/17 and 31/32/33 bracket the SSE2 and AVX2 step widths; 7/8/9
  // bracket the SWAR word. 130 exercises multi-step loops plus tail.
  const size_t lengths[] = {0,  1,  2,  3,  7,  8,  9,  15, 16, 17,
                            23, 31, 32, 33, 63, 64, 65, 96, 129, 130};
  for (size_t len : lengths) {
    for (size_t off = 0; off <= 17; ++off) {
      std::string storage(off + len + 64, '\0');
      for (char& c : storage) {
        c = static_cast<char>('a' + rng.below(16));  // never '\t' or '\n'
      }
      check(storage.data() + off, len, rng);
    }
  }
}

TEST(SimdFindByte, AllImplsMatchScalarOnAdversarialAlignments) {
  for_each_case([](char* data, size_t n, Rng& rng) {
    // Absent probe.
    EXPECT_EQ(find_byte(data, n, '\t'), find_byte_scalar(data, n, '\t'));
    EXPECT_EQ(find_byte_swar(data, n, '\t'),
              find_byte_scalar(data, n, '\t'));
    EXPECT_EQ(find_byte_scalar(data, n, '\t'), n);
    // Probe planted at every position (first/last/step-straddling all
    // covered because n itself sweeps the step widths).
    for (size_t at = 0; at < n; ++at) {
      char saved = data[at];
      data[at] = '\t';
      size_t want = find_byte_scalar(data, n, '\t');
      EXPECT_EQ(want, at);
      EXPECT_EQ(find_byte(data, n, '\t'), want);
      EXPECT_EQ(find_byte_swar(data, n, '\t'), want);
      data[at] = saved;
    }
    // Duplicate probes: first match wins.
    if (n >= 2) {
      size_t a = rng.below(n);
      size_t b = rng.below(n);
      char sa = data[a];
      char sb = data[b];
      data[a] = '\t';
      data[b] = '\t';
      size_t want = find_byte_scalar(data, n, '\t');
      EXPECT_EQ(want, std::min(a, b));
      EXPECT_EQ(find_byte(data, n, '\t'), want);
      EXPECT_EQ(find_byte_swar(data, n, '\t'), want);
      data[a] = sa;
      data[b] = sb;
    }
  });
}

TEST(SimdFindByte2, AllImplsMatchScalar) {
  for_each_case([](char* data, size_t n, Rng& rng) {
    EXPECT_EQ(find_byte2(data, n, '\t', '\n'),
              find_byte2_scalar(data, n, '\t', '\n'));
    for (size_t at = 0; at < n; ++at) {
      char saved = data[at];
      data[at] = rng.below(2) == 0 ? '\t' : '\n';
      size_t want = find_byte2_scalar(data, n, '\t', '\n');
      EXPECT_EQ(want, at);
      EXPECT_EQ(find_byte2(data, n, '\t', '\n'), want);
      EXPECT_EQ(find_byte2_swar(data, n, '\t', '\n'), want);
      data[at] = saved;
    }
    // Both probe bytes present: earliest of the two wins.
    if (n >= 2) {
      char s0 = data[n / 2];
      char s1 = data[n - 1];
      data[n / 2] = '\n';
      data[n - 1] = '\t';
      size_t want = find_byte2_scalar(data, n, '\t', '\n');
      EXPECT_EQ(want, n / 2);
      EXPECT_EQ(find_byte2(data, n, '\t', '\n'), want);
      EXPECT_EQ(find_byte2_swar(data, n, '\t', '\n'), want);
      data[n / 2] = s0;
      data[n - 1] = s1;
    }
  });
}

TEST(SimdRfindByte, AllImplsMatchScalar) {
  for_each_case([](char* data, size_t n, Rng& rng) {
    EXPECT_EQ(rfind_byte(data, n, '\n'), rfind_byte_scalar(data, n, '\n'));
    EXPECT_EQ(rfind_byte_scalar(data, n, '\n'), kNpos);
    for (size_t at = 0; at < n; ++at) {
      char saved = data[at];
      data[at] = '\n';
      size_t want = rfind_byte_scalar(data, n, '\n');
      EXPECT_EQ(want, at);
      EXPECT_EQ(rfind_byte(data, n, '\n'), want);
      EXPECT_EQ(rfind_byte_swar(data, n, '\n'), want);
      data[at] = saved;
    }
    // Duplicate probes: last match wins.
    if (n >= 2) {
      size_t a = rng.below(n);
      size_t b = rng.below(n);
      char sa = data[a];
      char sb = data[b];
      data[a] = '\n';
      data[b] = '\n';
      size_t want = rfind_byte_scalar(data, n, '\n');
      EXPECT_EQ(want, std::max(a, b));
      EXPECT_EQ(rfind_byte(data, n, '\n'), want);
      EXPECT_EQ(rfind_byte_swar(data, n, '\n'), want);
      data[a] = sa;
      data[b] = sb;
    }
  });
}

TEST(SimdFindByte, HighBitBytesDoNotFalsePositive) {
  // The SWAR zero-byte trick is the classic place 0x80..0xFF bytes leak
  // through as phantom matches.
  std::string data(64, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(0x80 + (i % 0x7F));
  }
  EXPECT_EQ(find_byte(data.data(), data.size(), '\t'), data.size());
  EXPECT_EQ(find_byte_swar(data.data(), data.size(), '\t'), data.size());
  EXPECT_EQ(rfind_byte(data.data(), data.size(), '\t'), kNpos);
  // And searching *for* a high byte works.
  data[37] = static_cast<char>(0xFF);
  EXPECT_EQ(find_byte(data.data(), data.size(), static_cast<char>(0xFF)),
            find_byte_scalar(data.data(), data.size(),
                             static_cast<char>(0xFF)));
}

TEST(SimdSplit, TokenizesEmptyFieldsAndEdges) {
  // strutil::split rides on find_byte; lock in its separator semantics.
  using strutil::split;
  std::vector<std::string_view> f;
  split("", '\t', f);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "");
  split("\t", '\t', f);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[1], "");
  split("a\t\tb\t", '\t', f);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[2], "b");
  EXPECT_EQ(f[3], "");
  // A realistic SAM line (no trailing newline) splits into 12 fields.
  std::string line =
      "read1\t99\tchr1\t1000\t60\t50M\t=\t1200\t250\tACGT\tIIII\tNM:i:0";
  split(line, '\t', f);
  ASSERT_EQ(f.size(), 12u);
  EXPECT_EQ(f[0], "read1");
  EXPECT_EQ(f[11], "NM:i:0");
}

TEST(SimdCrc32, MatchesZlibAcrossLengthsAndAlignments) {
  Rng rng(7);
  std::string buf(4096 + 32, '\0');
  for (char& c : buf) {
    c = static_cast<char>(rng.below(256));
  }
  const size_t lengths[] = {0,  1,   7,   8,   15,  16,   17,  63,
                            64, 65,  127, 255, 256, 1024, 4000};
  for (size_t len : lengths) {
    for (size_t off = 0; off <= 17; ++off) {
      const char* p = buf.data() + off;
      uint32_t want = static_cast<uint32_t>(
          ::crc32(::crc32(0L, Z_NULL, 0),
                  reinterpret_cast<const Bytef*>(p),
                  static_cast<uInt>(len)));
      EXPECT_EQ(crc32_ieee(0, p, len), want) << "len " << len << " off "
                                             << off;
      EXPECT_EQ(crc32_ieee_scalar(0, p, len), want);
    }
  }
}

TEST(SimdCrc32, ChainsIncrementallyLikeZlib) {
  Rng rng(11);
  std::string buf(100000, '\0');
  for (char& c : buf) {
    c = static_cast<char>(rng.below(256));
  }
  uint32_t whole = crc32_ieee(0, buf.data(), buf.size());
  uint32_t zwhole = static_cast<uint32_t>(
      ::crc32(::crc32(0L, Z_NULL, 0),
              reinterpret_cast<const Bytef*>(buf.data()),
              static_cast<uInt>(buf.size())));
  EXPECT_EQ(whole, zwhole);
  // Split at awkward points, including mid-vector.
  for (size_t cut : {1ul, 17ul, 63ul, 64ul, 65ul, 4099ul, 99999ul}) {
    uint32_t a = crc32_ieee(0, buf.data(), cut);
    uint32_t b = crc32_ieee(a, buf.data() + cut, buf.size() - cut);
    EXPECT_EQ(b, whole) << "cut " << cut;
    uint32_t sa = crc32_ieee_scalar(0, buf.data(), cut);
    uint32_t sb =
        crc32_ieee_scalar(sa, buf.data() + cut, buf.size() - cut);
    EXPECT_EQ(sb, whole) << "cut " << cut;
  }
}

TEST(SimdDispatch, LevelAndNamesAreCoherent) {
  Level level = active_level();
  EXPECT_GE(static_cast<int>(level), static_cast<int>(Level::kScalar));
  EXPECT_LE(static_cast<int>(level), static_cast<int>(Level::kAvx2));
  EXPECT_STREQ(level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(level_name(Level::kSwar), "swar");
  EXPECT_STREQ(level_name(Level::kSse2), "sse2");
  EXPECT_STREQ(level_name(Level::kAvx2), "avx2");
  const char* crc = crc32_impl_name();
  EXPECT_TRUE(std::strcmp(crc, "slice8") == 0 ||
              std::strcmp(crc, "pclmul") == 0 ||
              std::strcmp(crc, "armv8-crc") == 0)
      << crc;
#ifdef NGSX_SCALAR_ONLY
  EXPECT_EQ(level, Level::kScalar);
  EXPECT_STREQ(crc32_impl_name(), "slice8");
#endif
}

}  // namespace
}  // namespace ngsx::simd
