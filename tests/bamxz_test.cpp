// Tests for BAMXZ (block-compressed BAMX — the paper's compression
// future-work item): framing, random access, compression effectiveness,
// and corruption detection.

#include <gtest/gtest.h>

#include "formats/bamxz.h"
#include "simdata/readsim.h"
#include "util/tempdir.h"

namespace ngsx::bamxz {
namespace {

using sam::AlignmentRecord;

struct Fixture {
  TempDir tmp;
  std::vector<AlignmentRecord> records;
  bamx::BamxLayout layout;
  std::string path;
  sam::SamHeader header;

  explicit Fixture(uint64_t pairs = 500, uint32_t records_per_block = 128) {
    auto genome = simdata::ReferenceGenome::simulate(
        simdata::mouse_like_references(400000), 31);
    header = genome.header();
    simdata::ReadSimConfig cfg;
    cfg.seed = 31;
    records = simdata::simulate_alignments(genome, pairs, cfg);
    for (const auto& r : records) {
      layout.accommodate(r);
    }
    path = tmp.file("t.bamxz");
    BamxzWriter w(path, header, layout, records_per_block);
    for (const auto& r : records) {
      w.write(r);
    }
    w.close();
  }
};

TEST(Bamxz, HeaderGeometryPersisted) {
  Fixture f;
  BamxzReader r(f.path);
  EXPECT_EQ(r.num_records(), f.records.size());
  EXPECT_EQ(r.layout(), f.layout);
  EXPECT_EQ(r.records_per_block(), 128u);
  EXPECT_EQ(r.num_blocks(), (f.records.size() + 127) / 128);
  EXPECT_EQ(r.header().references().size(),
            f.header.references().size());
}

TEST(Bamxz, SequentialScanMatches) {
  Fixture f;
  BamxzReader r(f.path);
  std::vector<AlignmentRecord> batch;
  r.read_range(0, r.num_records(), batch);
  EXPECT_EQ(batch, f.records);
}

TEST(Bamxz, RandomAccessAcrossBlocks) {
  Fixture f;
  BamxzReader r(f.path);
  AlignmentRecord rec;
  for (uint64_t i : {0ull, 127ull, 128ull, 500ull, 999ull, 64ull, 900ull}) {
    r.read(i, rec);
    EXPECT_EQ(rec, f.records[i]) << "record " << i;
  }
}

TEST(Bamxz, CompressesPadding) {
  Fixture f;
  uint64_t raw_bamx = f.records.size() * f.layout.stride();
  BamxzReader r(f.path);
  // Padded fixed-stride records deflate well below the raw BAMX size.
  EXPECT_LT(r.compressed_size(), raw_bamx / 2);
}

TEST(Bamxz, PartialFinalBlock) {
  Fixture f(/*pairs=*/70, /*records_per_block=*/64);  // 140 records: 3 blocks
  BamxzReader r(f.path);
  EXPECT_EQ(r.num_blocks(), 3u);
  AlignmentRecord rec;
  r.read(139, rec);
  EXPECT_EQ(rec, f.records[139]);
}

TEST(Bamxz, SingleRecordBlocks) {
  Fixture f(/*pairs=*/10, /*records_per_block=*/1);
  BamxzReader r(f.path);
  EXPECT_EQ(r.num_blocks(), 20u);
  std::vector<AlignmentRecord> batch;
  r.read_range(5, 15, batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i], f.records[5 + i]);
  }
}

TEST(Bamxz, EmptyFile) {
  TempDir tmp;
  auto header = sam::SamHeader::from_references({{"c", 100}});
  bamx::BamxLayout layout;
  {
    BamxzWriter w(tmp.file("e.bamxz"), header, layout);
    w.close();
  }
  BamxzReader r(tmp.file("e.bamxz"));
  EXPECT_EQ(r.num_records(), 0u);
  EXPECT_EQ(r.num_blocks(), 0u);
}

TEST(Bamxz, OutOfRangeChecked) {
  Fixture f(/*pairs=*/5);
  BamxzReader r(f.path);
  AlignmentRecord rec;
  EXPECT_THROW(r.read(10, rec), Error);
  std::vector<AlignmentRecord> batch;
  EXPECT_THROW(r.read_range(0, 11, batch), Error);
}

TEST(Bamxz, BadMagicRejected) {
  TempDir tmp;
  write_file(tmp.file("bad.bamxz"), "garbage file with no structure here");
  EXPECT_THROW(BamxzReader r(tmp.file("bad.bamxz")), FormatError);
}

TEST(Bamxz, TruncatedFooterRejected) {
  Fixture f(/*pairs=*/20);
  std::string data = read_file(f.path);
  std::string cut = f.tmp.file("cut.bamxz");
  write_file(cut, data.substr(0, data.size() - 6));
  EXPECT_THROW(BamxzReader r(cut), FormatError);
}

TEST(Bamxz, CorruptBlockDetected) {
  Fixture f(/*pairs=*/50, /*records_per_block=*/32);
  std::string data = read_file(f.path);
  // Flip a byte in the middle of the compressed area (after the header
  // blob, well before the footer).
  size_t victim = data.size() / 2;
  data[victim] = static_cast<char>(data[victim] ^ 0x7F);
  std::string bad = f.tmp.file("bad.bamxz");
  write_file(bad, data);
  BamxzReader r(bad);
  AlignmentRecord rec;
  bool failed = false;
  try {
    for (uint64_t i = 0; i < r.num_records(); ++i) {
      r.read(i, rec);
    }
  } catch (const Error&) {
    failed = true;
  }
  EXPECT_TRUE(failed);
}

TEST(Bamxz, WriteAfterCloseRejected) {
  TempDir tmp;
  auto header = sam::SamHeader::from_references({{"c", 100}});
  bamx::BamxLayout layout;
  AlignmentRecord rec;
  rec.qname = "x";
  layout.accommodate(rec);
  BamxzWriter w(tmp.file("t.bamxz"), header, layout);
  w.write(rec);
  w.close();
  EXPECT_THROW(w.write(rec), Error);
}

}  // namespace
}  // namespace ngsx::bamxz
