// Tests for BED parsing and the interval algebra (BEDTools-style ops).

#include <gtest/gtest.h>

#include "formats/bed.h"
#include "util/binio.h"
#include "util/common.h"
#include "util/tempdir.h"

namespace ngsx::bed {
namespace {

BedInterval iv(const char* chrom, int64_t begin, int64_t end) {
  BedInterval interval;
  interval.chrom = chrom;
  interval.begin = begin;
  interval.end = end;
  return interval;
}

// ------------------------------------------------------------------ parsing

TEST(BedParse, ThreeColumns) {
  BedInterval interval = parse_bed_line("chr1\t100\t200");
  EXPECT_EQ(interval.chrom, "chr1");
  EXPECT_EQ(interval.begin, 100);
  EXPECT_EQ(interval.end, 200);
  EXPECT_TRUE(interval.name.empty());
  EXPECT_EQ(interval.strand, '.');
}

TEST(BedParse, SixColumns) {
  BedInterval interval = parse_bed_line("chr2\t5\t15\tpeak1\t37.5\t-");
  EXPECT_EQ(interval.name, "peak1");
  EXPECT_DOUBLE_EQ(interval.score, 37.5);
  EXPECT_EQ(interval.strand, '-');
}

TEST(BedParse, ExtraColumnsPreserved) {
  BedInterval interval =
      parse_bed_line("chr1\t0\t10\tx\t1\t+\tthick\tstart\tcolors");
  EXPECT_EQ(interval.rest, "thick\tstart\tcolors");
  std::string out;
  format_bed_line(interval, out);
  EXPECT_EQ(out, "chr1\t0\t10\tx\t1\t+\tthick\tstart\tcolors");
}

TEST(BedParse, DotScoreAccepted) {
  BedInterval interval = parse_bed_line("chr1\t0\t10\tx\t.\t+");
  EXPECT_DOUBLE_EQ(interval.score, 0.0);
  EXPECT_EQ(interval.strand, '+');
}

TEST(BedParse, Errors) {
  EXPECT_THROW(parse_bed_line("chr1\t100"), FormatError);
  EXPECT_THROW(parse_bed_line("chr1\tabc\t200"), FormatError);
  EXPECT_THROW(parse_bed_line("chr1\t200\t100"), FormatError);
  EXPECT_THROW(parse_bed_line("chr1\t-5\t10"), FormatError);
  EXPECT_THROW(parse_bed_line("chr1\t0\t10\tx\t1\tz"), FormatError);
}

TEST(BedParse, FormatRoundTrip) {
  for (const char* line :
       {"chr1\t0\t10", "chr1\t0\t10\tname", "chr1\t0\t10\tname\t5",
        "chr1\t0\t10\tname\t5\t-"}) {
    std::string out;
    format_bed_line(parse_bed_line(line), out);
    EXPECT_EQ(out, line);
  }
  // The formatter emits minimal columns: a default ('.') strand with no
  // later columns is dropped, so such lines round-trip semantically
  // rather than byte-wise.
  BedInterval dotted = parse_bed_line("chrX\t999\t1000\t.\t0.5\t.");
  std::string out;
  format_bed_line(dotted, out);
  EXPECT_EQ(parse_bed_line(out), dotted);
}

TEST(BedFile, ReadSkipsCommentsAndTracks) {
  TempDir tmp;
  write_file(tmp.file("t.bed"),
             "# comment\ntrack name=peaks\nbrowser position chr1\n"
             "chr1\t10\t20\n\nchr2\t5\t6\n");
  auto intervals = read_bed(tmp.file("t.bed"));
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0].chrom, "chr1");
  EXPECT_EQ(intervals[1].chrom, "chr2");
}

TEST(BedFile, WriteReadRoundTrip) {
  TempDir tmp;
  std::vector<BedInterval> intervals = {iv("chr1", 0, 5), iv("chr2", 10, 30)};
  intervals[0].name = "a";
  intervals[0].score = 2;
  intervals[0].strand = '+';
  write_bed(tmp.file("t.bed"), intervals);
  EXPECT_EQ(read_bed(tmp.file("t.bed")), intervals);
}

// ----------------------------------------------------------------- algebra

TEST(BedOps, SortOrder) {
  std::vector<BedInterval> v = {iv("chr2", 5, 9), iv("chr1", 50, 60),
                                iv("chr1", 10, 30), iv("chr1", 10, 20)};
  sort_intervals(v);
  EXPECT_EQ(v[0], iv("chr1", 10, 20));
  EXPECT_EQ(v[1], iv("chr1", 10, 30));
  EXPECT_EQ(v[2], iv("chr1", 50, 60));
  EXPECT_EQ(v[3], iv("chr2", 5, 9));
}

TEST(BedOps, MergeOverlapping) {
  auto merged = merge_intervals(
      {iv("chr1", 0, 10), iv("chr1", 5, 20), iv("chr1", 30, 40),
       iv("chr2", 0, 5)});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].begin, 0);
  EXPECT_EQ(merged[0].end, 20);
  EXPECT_DOUBLE_EQ(merged[0].score, 2);  // merged-count lands in score
  EXPECT_EQ(merged[1], [] {
    BedInterval m = iv("chr1", 30, 40);
    m.score = 1;
    return m;
  }());
  EXPECT_EQ(merged[2].chrom, "chr2");
}

TEST(BedOps, MergeBookEndedAndGap) {
  // Book-ended intervals merge at gap 0; gap=5 bridges small holes.
  auto touch = merge_intervals({iv("c", 0, 10), iv("c", 10, 20)});
  ASSERT_EQ(touch.size(), 1u);
  EXPECT_EQ(touch[0].end, 20);
  auto apart = merge_intervals({iv("c", 0, 10), iv("c", 13, 20)});
  EXPECT_EQ(apart.size(), 2u);
  auto bridged = merge_intervals({iv("c", 0, 10), iv("c", 13, 20)}, 5);
  ASSERT_EQ(bridged.size(), 1u);
  EXPECT_EQ(bridged[0].end, 20);
}

TEST(BedOps, MergeContained) {
  auto merged = merge_intervals({iv("c", 0, 100), iv("c", 10, 20)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].end, 100);
}

TEST(BedOps, Intersect) {
  auto out = intersect_intervals(
      {iv("chr1", 0, 50), iv("chr1", 100, 150), iv("chr2", 0, 10)},
      {iv("chr1", 40, 120), iv("chr2", 5, 8)});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], iv("chr1", 40, 50));
  EXPECT_EQ(out[1], iv("chr1", 100, 120));
  EXPECT_EQ(out[2], iv("chr2", 5, 8));
}

TEST(BedOps, IntersectEmptyWhenDisjoint) {
  EXPECT_TRUE(intersect_intervals({iv("c", 0, 10)}, {iv("c", 10, 20)})
                  .empty());
  EXPECT_TRUE(intersect_intervals({iv("c1", 0, 10)}, {iv("c2", 0, 10)})
                  .empty());
}

TEST(BedOps, IntersectKeepsLhsAnnotation) {
  BedInterval a = iv("c", 0, 10);
  a.name = "peak7";
  a.strand = '-';
  auto out = intersect_intervals({a}, {iv("c", 5, 20)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].name, "peak7");
  EXPECT_EQ(out[0].strand, '-');
}

TEST(BedOps, Subtract) {
  auto out = subtract_intervals({iv("c", 0, 100)},
                                {iv("c", 20, 30), iv("c", 50, 60)});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], iv("c", 0, 20));
  EXPECT_EQ(out[1], iv("c", 30, 50));
  EXPECT_EQ(out[2], iv("c", 60, 100));
}

TEST(BedOps, SubtractFullCoverRemoves) {
  EXPECT_TRUE(
      subtract_intervals({iv("c", 10, 20)}, {iv("c", 0, 100)}).empty());
}

TEST(BedOps, SubtractNoOverlapKeeps) {
  auto out = subtract_intervals({iv("c", 0, 10)}, {iv("c", 50, 60)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], iv("c", 0, 10));
}

TEST(BedOps, SubtractOverlapAtEdges) {
  auto out = subtract_intervals({iv("c", 10, 30)},
                                {iv("c", 0, 15), iv("c", 25, 40)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], iv("c", 15, 25));
}

TEST(BedOps, CoveredBases) {
  EXPECT_EQ(covered_bases({iv("c", 0, 10), iv("c", 5, 20), iv("d", 0, 3)}),
            23);
  EXPECT_EQ(covered_bases({}), 0);
}

TEST(BedOps, CountOverlaps) {
  auto counts = count_overlaps(
      {iv("c", 0, 10), iv("c", 100, 110), iv("d", 0, 5)},
      {iv("c", 5, 8), iv("c", 9, 20), iv("c", 105, 106), iv("e", 0, 5)});
  EXPECT_EQ(counts, (std::vector<uint64_t>{2, 1, 0}));
}

TEST(BedOps, IntersectSubtractPartitionProperty) {
  // intersect(a, b) and subtract(a, b) partition a: their covered bases
  // sum to a's coverage, and they don't overlap each other.
  std::vector<BedInterval> a = {iv("c", 0, 50), iv("c", 80, 120),
                                iv("d", 10, 40)};
  std::vector<BedInterval> b = {iv("c", 30, 90), iv("d", 0, 20),
                                iv("d", 35, 36)};
  auto inter = intersect_intervals(a, b);
  auto sub = subtract_intervals(a, b);
  EXPECT_EQ(covered_bases(inter) + covered_bases(sub), covered_bases(a));
  for (const auto& x : inter) {
    for (const auto& y : sub) {
      EXPECT_FALSE(x.overlaps(y));
    }
  }
}

}  // namespace
}  // namespace ngsx::bed
