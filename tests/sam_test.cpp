// Tests for the SAM data model and text codec.

#include <gtest/gtest.h>

#include "formats/sam.h"
#include "util/tempdir.h"

namespace ngsx::sam {
namespace {

SamHeader test_header() {
  return SamHeader::from_references(
      {{"chr1", 100000}, {"chr2", 50000}, {"chrM", 16000}});
}

AlignmentRecord basic_record() {
  AlignmentRecord rec;
  rec.qname = "read/1";
  rec.flag = kPaired | kProperPair | kRead1;
  rec.ref_id = 0;
  rec.pos = 99;  // 0-based
  rec.mapq = 60;
  rec.cigar = {{'M', 90}};
  rec.mate_ref_id = 0;
  rec.mate_pos = 299;
  rec.tlen = 290;
  rec.seq = std::string(90, 'A');
  rec.qual = std::string(90, 'I');
  return rec;
}

// ------------------------------------------------------------------ header

TEST(SamHeader, FromReferencesSynthesizesText) {
  SamHeader h = test_header();
  EXPECT_NE(h.text().find("@HD"), std::string::npos);
  EXPECT_NE(h.text().find("@SQ\tSN:chr1\tLN:100000"), std::string::npos);
  EXPECT_EQ(h.references().size(), 3u);
}

TEST(SamHeader, FromTextParsesSq) {
  SamHeader h = SamHeader::from_text(
      "@HD\tVN:1.4\n@SQ\tSN:chrX\tLN:1234\n@PG\tID:bwa\n");
  ASSERT_EQ(h.references().size(), 1u);
  EXPECT_EQ(h.references()[0].name, "chrX");
  EXPECT_EQ(h.references()[0].length, 1234);
  EXPECT_EQ(h.ref_id("chrX"), 0);
  EXPECT_EQ(h.ref_id("chrY"), -1);
}

TEST(SamHeader, RefNameLookup) {
  SamHeader h = test_header();
  EXPECT_EQ(h.ref_name(0), "chr1");
  EXPECT_EQ(h.ref_name(2), "chrM");
  EXPECT_EQ(h.ref_name(-1), "*");
  EXPECT_THROW(h.ref_name(3), Error);
  EXPECT_EQ(h.ref_length(1), 50000);
}

TEST(SamHeader, RejectsNonHeaderLine) {
  EXPECT_THROW(SamHeader::from_text("read1\t0\tchr1\n"), FormatError);
}

TEST(SamHeader, RejectsSqMissingFields) {
  EXPECT_THROW(SamHeader::from_text("@SQ\tSN:chr1\n"), FormatError);
  EXPECT_THROW(SamHeader::from_text("@SQ\tLN:55\n"), FormatError);
}

TEST(SamHeader, EmptyHeaderOk) {
  SamHeader h = SamHeader::from_text("");
  EXPECT_TRUE(h.references().empty());
}

// ------------------------------------------------------------------- cigar

TEST(Cigar, ParseBasic) {
  auto ops = parse_cigar("76M2I12M");
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0], (CigarOp{'M', 76}));
  EXPECT_EQ(ops[1], (CigarOp{'I', 2}));
  EXPECT_EQ(ops[2], (CigarOp{'M', 12}));
}

TEST(Cigar, ParseStarIsEmpty) {
  EXPECT_TRUE(parse_cigar("*").empty());
}

TEST(Cigar, AllOpCodesRoundTrip) {
  for (char op : std::string("MIDNSHP=X")) {
    EXPECT_EQ(cigar_op_char(cigar_op_code(op)), op);
  }
  EXPECT_THROW(cigar_op_code('Q'), FormatError);
  EXPECT_THROW(cigar_op_char(9), FormatError);
}

TEST(Cigar, FormatRoundTrip) {
  std::string out;
  format_cigar(parse_cigar("5S85M1D4M2H"), out);
  EXPECT_EQ(out, "5S85M1D4M2H");
  out.clear();
  format_cigar({}, out);
  EXPECT_EQ(out, "*");
}

TEST(Cigar, ParseErrors) {
  EXPECT_THROW(parse_cigar("M"), FormatError);      // op without length
  EXPECT_THROW(parse_cigar("12"), FormatError);     // trailing length
  EXPECT_THROW(parse_cigar("5Q"), FormatError);     // unknown op
  EXPECT_THROW(parse_cigar("99999999999M"), FormatError);  // overflow
}

TEST(Cigar, ConsumesFlags) {
  EXPECT_TRUE((CigarOp{'M', 1}).consumes_reference());
  EXPECT_TRUE((CigarOp{'M', 1}).consumes_query());
  EXPECT_TRUE((CigarOp{'D', 1}).consumes_reference());
  EXPECT_FALSE((CigarOp{'D', 1}).consumes_query());
  EXPECT_FALSE((CigarOp{'I', 1}).consumes_reference());
  EXPECT_TRUE((CigarOp{'I', 1}).consumes_query());
  EXPECT_FALSE((CigarOp{'S', 1}).consumes_reference());
  EXPECT_TRUE((CigarOp{'S', 1}).consumes_query());
  EXPECT_FALSE((CigarOp{'H', 1}).consumes_reference());
  EXPECT_FALSE((CigarOp{'H', 1}).consumes_query());
  EXPECT_TRUE((CigarOp{'N', 1}).consumes_reference());
  EXPECT_TRUE((CigarOp{'=', 1}).consumes_reference());
  EXPECT_TRUE((CigarOp{'X', 1}).consumes_query());
}

// --------------------------------------------------------------------- aux

TEST(Aux, ParseInt) {
  AuxField a = parse_aux("NM:i:-3");
  EXPECT_EQ(a.tag[0], 'N');
  EXPECT_EQ(a.tag[1], 'M');
  EXPECT_EQ(a.type, 'i');
  EXPECT_EQ(a.int_value, -3);
}

TEST(Aux, ParseChar) {
  AuxField a = parse_aux("XT:A:U");
  EXPECT_EQ(a.type, 'A');
  EXPECT_EQ(static_cast<char>(a.int_value), 'U');
  EXPECT_THROW(parse_aux("XT:A:UU"), FormatError);
}

TEST(Aux, ParseFloat) {
  AuxField a = parse_aux("XF:f:2.5");
  EXPECT_EQ(a.type, 'f');
  EXPECT_DOUBLE_EQ(a.float_value, 2.5);
}

TEST(Aux, ParseStringAndHex) {
  EXPECT_EQ(parse_aux("MD:Z:10A79").str_value, "10A79");
  EXPECT_EQ(parse_aux("XH:H:1AFF").str_value, "1AFF");
  EXPECT_EQ(parse_aux("MD:Z:").str_value, "");
}

TEST(Aux, ParseIntArray) {
  AuxField a = parse_aux("ZB:B:S,1,2,65535");
  EXPECT_EQ(a.type, 'B');
  EXPECT_EQ(a.subtype, 'S');
  EXPECT_EQ(a.int_array, (std::vector<int64_t>{1, 2, 65535}));
}

TEST(Aux, ParseFloatArray) {
  AuxField a = parse_aux("ZF:B:f,1.5,-2.5");
  EXPECT_EQ(a.subtype, 'f');
  ASSERT_EQ(a.float_array.size(), 2u);
  EXPECT_DOUBLE_EQ(a.float_array[1], -2.5);
}

TEST(Aux, ParseEmptyArray) {
  AuxField a = parse_aux("ZB:B:c");
  EXPECT_TRUE(a.int_array.empty());
}

TEST(Aux, ParseErrors) {
  EXPECT_THROW(parse_aux("N:i:1"), FormatError);     // short tag
  EXPECT_THROW(parse_aux("NM=i=1"), FormatError);    // bad separators
  EXPECT_THROW(parse_aux("NM:q:1"), FormatError);    // unknown type
  EXPECT_THROW(parse_aux("NM:i:abc"), FormatError);  // bad int
  EXPECT_THROW(parse_aux("ZB:B:q,1"), FormatError);  // unknown subtype
  EXPECT_THROW(parse_aux("ZB:B:"), FormatError);     // empty B
}

TEST(Aux, FormatRoundTrip) {
  for (const char* text :
       {"NM:i:7", "XT:A:M", "XF:f:0.5", "MD:Z:90", "XH:H:ABCD",
        "ZB:B:S,3,1,2", "ZF:B:f,1.5", "ZC:B:c,-1,2"}) {
    std::string out;
    format_aux(parse_aux(text), out);
    EXPECT_EQ(out, text);
  }
}

// ------------------------------------------------------------------ record

TEST(Record, ParseMinimalLine) {
  SamHeader h = test_header();
  AlignmentRecord rec;
  parse_record("r1\t0\tchr1\t100\t60\t90M\t*\t0\t0\t*\t*", h, rec);
  EXPECT_EQ(rec.qname, "r1");
  EXPECT_EQ(rec.flag, 0);
  EXPECT_EQ(rec.ref_id, 0);
  EXPECT_EQ(rec.pos, 99);  // converted to 0-based
  EXPECT_EQ(rec.mapq, 60);
  EXPECT_EQ(rec.cigar.size(), 1u);
  EXPECT_EQ(rec.mate_ref_id, -1);
  EXPECT_TRUE(rec.seq.empty());
  EXPECT_TRUE(rec.qual.empty());
  EXPECT_TRUE(rec.tags.empty());
}

TEST(Record, ParseWithTagsAndMate) {
  SamHeader h = test_header();
  AlignmentRecord rec;
  parse_record(
      "r2\t99\tchr1\t100\t60\t90M\t=\t300\t290\tACGT\tIIII\tNM:i:1\tMD:Z:90",
      h, rec);
  EXPECT_EQ(rec.mate_ref_id, 0);  // '=' resolves to same reference
  EXPECT_EQ(rec.mate_pos, 299);
  EXPECT_EQ(rec.tlen, 290);
  ASSERT_EQ(rec.tags.size(), 2u);
  EXPECT_EQ(rec.tags[0].int_value, 1);
  EXPECT_EQ(rec.tags[1].str_value, "90");
}

TEST(Record, ParseMateOnOtherChromosome) {
  SamHeader h = test_header();
  AlignmentRecord rec;
  parse_record("r\t1\tchr1\t10\t0\t*\tchr2\t99\t0\t*\t*", h, rec);
  EXPECT_EQ(rec.mate_ref_id, 1);
  EXPECT_EQ(rec.mate_pos, 98);
}

TEST(Record, ParseUnmapped) {
  SamHeader h = test_header();
  AlignmentRecord rec;
  parse_record("u\t4\t*\t0\t0\t*\t*\t0\t0\tACGT\t!!!!", h, rec);
  EXPECT_TRUE(rec.is_unmapped());
  EXPECT_EQ(rec.ref_id, -1);
  EXPECT_EQ(rec.pos, -1);
}

TEST(Record, ParseCrLf) {
  SamHeader h = test_header();
  AlignmentRecord rec;
  parse_record("r\t0\tchr1\t1\t0\t*\t*\t0\t0\t*\t*\r", h, rec);
  EXPECT_EQ(rec.qname, "r");
}

TEST(Record, ParseErrors) {
  SamHeader h = test_header();
  AlignmentRecord rec;
  EXPECT_THROW(parse_record("too\tfew\tfields", h, rec), FormatError);
  EXPECT_THROW(
      parse_record("r\t0\tchrZ\t1\t0\t*\t*\t0\t0\t*\t*", h, rec),
      FormatError);  // unknown reference
  EXPECT_THROW(
      parse_record("r\t0\tchr1\t1\t0\t*\tchrZ\t0\t0\t*\t*", h, rec),
      FormatError);  // unknown mate reference
  EXPECT_THROW(
      parse_record("r\tx\tchr1\t1\t0\t*\t*\t0\t0\t*\t*", h, rec),
      FormatError);  // bad flag
  EXPECT_THROW(
      parse_record("r\t0\tchr1\t1\t0\t*\t*\t0\t0\tACGT\tII", h, rec),
      FormatError);  // SEQ/QUAL mismatch
}

TEST(Record, FormatRoundTrip) {
  SamHeader h = test_header();
  AlignmentRecord rec = basic_record();
  AuxField nm;
  nm.tag = {'N', 'M'};
  nm.type = 'i';
  nm.int_value = 2;
  rec.tags.push_back(nm);

  std::string line;
  format_record(rec, h, line);
  AlignmentRecord back;
  parse_record(line, h, back);
  EXPECT_EQ(back, rec);
}

TEST(Record, FormatUsesEqualsForSameMateRef) {
  SamHeader h = test_header();
  AlignmentRecord rec = basic_record();
  std::string line;
  format_record(rec, h, line);
  EXPECT_NE(line.find("\t=\t"), std::string::npos);
}

TEST(Record, FormatUnmappedStars) {
  SamHeader h = test_header();
  AlignmentRecord rec;
  rec.qname = "u";
  rec.flag = kUnmapped;
  std::string line;
  format_record(rec, h, line);
  EXPECT_EQ(line, "u\t4\t*\t0\t0\t*\t*\t0\t0\t*\t*");
}

TEST(Record, ReferenceSpan) {
  AlignmentRecord rec = basic_record();
  EXPECT_EQ(rec.reference_span(), 90);
  rec.cigar = parse_cigar("5S80M5S");
  EXPECT_EQ(rec.reference_span(), 80);
  rec.cigar = parse_cigar("40M10D40M");
  EXPECT_EQ(rec.reference_span(), 90);
  rec.cigar = parse_cigar("40M10I40M");
  EXPECT_EQ(rec.reference_span(), 80);
  rec.cigar = parse_cigar("30M1000N30M");
  EXPECT_EQ(rec.reference_span(), 1060);
  rec.cigar.clear();
  EXPECT_EQ(rec.reference_span(), 0);
  EXPECT_EQ(rec.end_pos(), rec.pos + 1);  // minimum span 1
}

TEST(Record, FindTag) {
  AlignmentRecord rec = basic_record();
  AuxField nm = parse_aux("NM:i:5");
  rec.tags.push_back(nm);
  ASSERT_NE(rec.find_tag("NM"), nullptr);
  EXPECT_EQ(rec.find_tag("NM")->int_value, 5);
  EXPECT_EQ(rec.find_tag("XX"), nullptr);
}

// --------------------------------------------------------------- revcomp

TEST(RevComp, Basic) {
  EXPECT_EQ(reverse_complement("ACGT"), "ACGT");
  EXPECT_EQ(reverse_complement("AAAC"), "GTTT");
  EXPECT_EQ(reverse_complement("N"), "N");
  EXPECT_EQ(reverse_complement(""), "");
}

TEST(RevComp, Involution) {
  std::string s = "ACGTNRYSWKMBDHV";
  EXPECT_EQ(reverse_complement(reverse_complement(s)), s);
}

// --------------------------------------------------------------- file I/O

TEST(SamFile, WriteReadRoundTrip) {
  TempDir tmp;
  SamHeader h = test_header();
  std::string path = tmp.file("t.sam");
  std::vector<AlignmentRecord> records;
  for (int i = 0; i < 100; ++i) {
    AlignmentRecord rec = basic_record();
    rec.qname = "r" + std::to_string(i);
    rec.pos = i * 10;
    rec.mate_pos = i * 10 + 200;
    records.push_back(rec);
  }
  {
    SamFileWriter w(path, h);
    for (const auto& r : records) {
      w.write(r);
    }
    w.close();
  }
  SamFileReader reader(path);
  EXPECT_EQ(reader.header().references().size(), 3u);
  AlignmentRecord rec;
  size_t i = 0;
  while (reader.next(rec)) {
    ASSERT_LT(i, records.size());
    EXPECT_EQ(rec, records[i]);
    ++i;
  }
  EXPECT_EQ(i, records.size());
}

TEST(SamFile, HeaderOnlyFile) {
  TempDir tmp;
  std::string path = tmp.file("h.sam");
  write_file(path, test_header().text());
  SamFileReader reader(path);
  AlignmentRecord rec;
  EXPECT_FALSE(reader.next(rec));
  EXPECT_EQ(reader.alignment_start_offset(), test_header().text().size());
}

TEST(SamFile, NoTrailingNewline) {
  TempDir tmp;
  std::string path = tmp.file("t.sam");
  SamHeader h = test_header();
  write_file(path,
             h.text() + "r1\t0\tchr1\t1\t0\t*\t*\t0\t0\t*\t*");
  SamFileReader reader(path);
  AlignmentRecord rec;
  EXPECT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.qname, "r1");
  EXPECT_FALSE(reader.next(rec));
}

TEST(SamFile, EmptyFile) {
  TempDir tmp;
  std::string path = tmp.file("e.sam");
  write_file(path, "");
  SamFileReader reader(path);
  AlignmentRecord rec;
  EXPECT_FALSE(reader.next(rec));
}

TEST(SamFile, BlankLinesSkipped) {
  TempDir tmp;
  std::string path = tmp.file("b.sam");
  SamHeader h = test_header();
  write_file(path, h.text() +
                       "r1\t0\tchr1\t1\t0\t*\t*\t0\t0\t*\t*\n\n"
                       "r2\t0\tchr1\t2\t0\t*\t*\t0\t0\t*\t*\n");
  SamFileReader reader(path);
  AlignmentRecord rec;
  int count = 0;
  while (reader.next(rec)) {
    ++count;
  }
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace ngsx::sam
