// Static vs dynamic scheduling equivalence: ConvertOptions::schedule
// switches how chunks are distributed over workers, but the N part files
// must stay byte-identical — the dynamic path reuses the static partition
// boundaries and commits parsed chunks in order, so even stateful writers
// (BAM/BGZF) produce the exact same bytes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/convert.h"
#include "formats/bam.h"
#include "simdata/readsim.h"
#include "util/tempdir.h"

namespace ngsx::core {
namespace {

using sam::AlignmentRecord;

struct Dataset {
  TempDir tmp;
  simdata::ReferenceGenome genome;
  std::vector<AlignmentRecord> records;
  std::string sam_path;
  std::string bam_path;

  explicit Dataset(uint64_t pairs = 300, uint64_t seed = 77)
      : genome(simdata::ReferenceGenome::simulate(
            simdata::mouse_like_references(400000), seed)) {
    simdata::ReadSimConfig cfg;
    cfg.seed = seed;
    records = simdata::simulate_alignments(genome, pairs, cfg);
    sam_path = tmp.file("in.sam");
    bam_path = tmp.file("in.bam");
    {
      sam::SamFileWriter w(sam_path, genome.header());
      for (const auto& r : records) {
        w.write(r);
      }
      w.close();
    }
    {
      bam::BamFileWriter w(bam_path, genome.header());
      for (const auto& r : records) {
        w.write(r);
      }
      w.close();
    }
  }
};

/// Runs both schedules with otherwise identical options and asserts every
/// part file matches byte-for-byte (same names, same contents).
template <typename RunFn>
void expect_schedules_identical(Dataset& d, ConvertOptions options,
                                const std::string& tag, RunFn run) {
  options.schedule = Schedule::kStatic;
  ConvertStats st = run(options, d.tmp.subdir(tag + "-static"));
  options.schedule = Schedule::kDynamic;
  ConvertStats dy = run(options, d.tmp.subdir(tag + "-dynamic"));

  ASSERT_EQ(st.outputs.size(), dy.outputs.size()) << tag;
  for (size_t i = 0; i < st.outputs.size(); ++i) {
    EXPECT_EQ(read_file(st.outputs[i]), read_file(dy.outputs[i]))
        << tag << " part " << i;
  }
  EXPECT_EQ(st.records_in, dy.records_in) << tag;
  EXPECT_EQ(st.records_out, dy.records_out) << tag;
  EXPECT_EQ(st.bytes_out, dy.bytes_out) << tag;
}

TEST(Schedule, ParseAndName) {
  EXPECT_EQ(parse_schedule("static"), Schedule::kStatic);
  EXPECT_EQ(parse_schedule("dynamic"), Schedule::kDynamic);
  EXPECT_THROW(parse_schedule("adaptive"), UsageError);
  EXPECT_EQ(schedule_name(Schedule::kStatic), "static");
  EXPECT_EQ(schedule_name(Schedule::kDynamic), "dynamic");
}

TEST(SamSchedule, PartFilesByteIdenticalAcrossFormats) {
  Dataset d(250);
  for (TargetFormat format : {TargetFormat::kBed, TargetFormat::kSam,
                              TargetFormat::kFastq, TargetFormat::kBam}) {
    ConvertOptions options;
    options.format = format;
    options.ranks = 3;
    options.chunk_bytes = 2048;  // many chunks per part
    expect_schedules_identical(
        d, options, std::string("sam-") + std::string(target_format_name(format)),
        [&](const ConvertOptions& o, const std::string& out) {
          return convert_sam(d.sam_path, out, o);
        });
  }
}

TEST(SamSchedule, RankSweepAndThreadOverride) {
  Dataset d(200);
  for (int ranks : {1, 2, 5}) {
    ConvertOptions options;
    options.format = TargetFormat::kBed;
    options.ranks = ranks;
    options.threads = 4;  // pool width decoupled from part count
    options.chunk_bytes = 1024;
    expect_schedules_identical(
        d, options, "ranks" + std::to_string(ranks),
        [&](const ConvertOptions& o, const std::string& out) {
          return convert_sam(d.sam_path, out, o);
        });
  }
}

TEST(SamSchedule, TinyChunksStillIdentical) {
  // chunk_bytes=1 degenerates to one chunk per line-break boundary — the
  // most adversarial commit interleaving the scheduler can produce.
  Dataset d(60);
  ConvertOptions options;
  options.format = TargetFormat::kBedgraph;
  options.ranks = 2;
  options.chunk_bytes = 1;
  expect_schedules_identical(
      d, options, "tiny",
      [&](const ConvertOptions& o, const std::string& out) {
        return convert_sam(d.sam_path, out, o);
      });
}

TEST(BamxSchedule, FullConversionByteIdentical) {
  Dataset d(300);
  std::string bamx = d.tmp.file("p.bamx");
  std::string baix = d.tmp.file("p.baix");
  preprocess_bam(d.bam_path, bamx, baix);
  for (TargetFormat format : {TargetFormat::kBedgraph, TargetFormat::kBam}) {
    ConvertOptions options;
    options.format = format;
    options.ranks = 4;
    options.record_batch = 16;  // small batches -> many dynamic chunks
    expect_schedules_identical(
        d, options,
        std::string("bamx-") + std::string(target_format_name(format)),
        [&](const ConvertOptions& o, const std::string& out) {
          return convert_bamx(bamx, baix, out, o);
        });
  }
}

TEST(BamxSchedule, RegionConversionByteIdentical) {
  Dataset d(400);
  std::string bamx = d.tmp.file("p.bamx");
  std::string baix = d.tmp.file("p.baix");
  preprocess_bam(d.bam_path, bamx, baix);
  Region region = parse_region("chr1:1-50000", d.genome.header());
  ConvertOptions options;
  options.format = TargetFormat::kBed;
  options.ranks = 3;
  options.record_batch = 8;
  expect_schedules_identical(
      d, options, "region",
      [&](const ConvertOptions& o, const std::string& out) {
        return convert_bamx(bamx, baix, out, o, region);
      });
}

TEST(BamxSchedule, FilteredConversionByteIdentical) {
  Dataset d(400);
  std::string bamx = d.tmp.file("p.bamx");
  std::string baix2 = d.tmp.file("p.baix2");
  preprocess_bam(d.bam_path, bamx, d.tmp.file("p.baix"));
  build_baix2(bamx, baix2);
  Region region = parse_region("chr1", d.genome.header());
  baix2::Filter filter;
  filter.min_mapq = 20;
  ConvertOptions options;
  options.format = TargetFormat::kBed;
  options.ranks = 2;
  options.record_batch = 8;
  expect_schedules_identical(
      d, options, "filtered",
      [&](const ConvertOptions& o, const std::string& out) {
        return convert_bamx_filtered(bamx, baix2, out, o, region,
                                     baix2::RegionMode::kOverlap, filter);
      });
}

TEST(SamSchedule, DynamicHandlesMoreRanksThanRecords) {
  // More parts than alignment lines: some chunks/parts are empty; the
  // dynamic path must still emit every (possibly header-only) part file.
  Dataset d(2);
  ConvertOptions options;
  options.format = TargetFormat::kSam;
  options.ranks = 8;
  options.chunk_bytes = 64;
  expect_schedules_identical(
      d, options, "sparse",
      [&](const ConvertOptions& o, const std::string& out) {
        return convert_sam(d.sam_path, out, o);
      });
}

}  // namespace
}  // namespace ngsx::core
