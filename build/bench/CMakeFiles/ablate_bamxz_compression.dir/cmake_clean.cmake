file(REMOVE_RECURSE
  "CMakeFiles/ablate_bamxz_compression.dir/ablate_bamxz_compression.cpp.o"
  "CMakeFiles/ablate_bamxz_compression.dir/ablate_bamxz_compression.cpp.o.d"
  "ablate_bamxz_compression"
  "ablate_bamxz_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_bamxz_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
