# Empty compiler generated dependencies file for micro_mpi.
# This may be replaced when dependencies are built.
