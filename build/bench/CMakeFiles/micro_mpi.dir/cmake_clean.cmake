file(REMOVE_RECURSE
  "CMakeFiles/micro_mpi.dir/micro_mpi.cpp.o"
  "CMakeFiles/micro_mpi.dir/micro_mpi.cpp.o.d"
  "micro_mpi"
  "micro_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
