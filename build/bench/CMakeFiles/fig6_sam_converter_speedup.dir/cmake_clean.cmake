file(REMOVE_RECURSE
  "CMakeFiles/fig6_sam_converter_speedup.dir/fig6_sam_converter_speedup.cpp.o"
  "CMakeFiles/fig6_sam_converter_speedup.dir/fig6_sam_converter_speedup.cpp.o.d"
  "fig6_sam_converter_speedup"
  "fig6_sam_converter_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sam_converter_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
