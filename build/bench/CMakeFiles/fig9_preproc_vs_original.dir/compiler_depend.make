# Empty compiler generated dependencies file for fig9_preproc_vs_original.
# This may be replaced when dependencies are built.
