file(REMOVE_RECURSE
  "CMakeFiles/fig9_preproc_vs_original.dir/fig9_preproc_vs_original.cpp.o"
  "CMakeFiles/fig9_preproc_vs_original.dir/fig9_preproc_vs_original.cpp.o.d"
  "fig9_preproc_vs_original"
  "fig9_preproc_vs_original.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_preproc_vs_original.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
