# Empty dependencies file for ablate_fdr_fusion.
# This may be replaced when dependencies are built.
