file(REMOVE_RECURSE
  "CMakeFiles/ablate_fdr_fusion.dir/ablate_fdr_fusion.cpp.o"
  "CMakeFiles/ablate_fdr_fusion.dir/ablate_fdr_fusion.cpp.o.d"
  "ablate_fdr_fusion"
  "ablate_fdr_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_fdr_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
