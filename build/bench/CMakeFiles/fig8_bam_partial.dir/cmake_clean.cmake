file(REMOVE_RECURSE
  "CMakeFiles/fig8_bam_partial.dir/fig8_bam_partial.cpp.o"
  "CMakeFiles/fig8_bam_partial.dir/fig8_bam_partial.cpp.o.d"
  "fig8_bam_partial"
  "fig8_bam_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bam_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
