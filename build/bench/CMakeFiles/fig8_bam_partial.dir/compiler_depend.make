# Empty compiler generated dependencies file for fig8_bam_partial.
# This may be replaced when dependencies are built.
