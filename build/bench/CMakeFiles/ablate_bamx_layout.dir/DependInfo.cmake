
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_bamx_layout.cpp" "bench/CMakeFiles/ablate_bamx_layout.dir/ablate_bamx_layout.cpp.o" "gcc" "bench/CMakeFiles/ablate_bamx_layout.dir/ablate_bamx_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/ngsx_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ngsx_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ngsx_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ngsx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simdata/CMakeFiles/ngsx_simdata.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/ngsx_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/ngsx_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ngsx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
