# Empty compiler generated dependencies file for ablate_bamx_layout.
# This may be replaced when dependencies are built.
