file(REMOVE_RECURSE
  "CMakeFiles/ablate_bamx_layout.dir/ablate_bamx_layout.cpp.o"
  "CMakeFiles/ablate_bamx_layout.dir/ablate_bamx_layout.cpp.o.d"
  "ablate_bamx_layout"
  "ablate_bamx_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_bamx_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
