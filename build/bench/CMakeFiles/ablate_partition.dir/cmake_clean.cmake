file(REMOVE_RECURSE
  "CMakeFiles/ablate_partition.dir/ablate_partition.cpp.o"
  "CMakeFiles/ablate_partition.dir/ablate_partition.cpp.o.d"
  "ablate_partition"
  "ablate_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
