# Empty compiler generated dependencies file for ablate_partition.
# This may be replaced when dependencies are built.
