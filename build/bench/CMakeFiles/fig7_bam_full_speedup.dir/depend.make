# Empty dependencies file for fig7_bam_full_speedup.
# This may be replaced when dependencies are built.
