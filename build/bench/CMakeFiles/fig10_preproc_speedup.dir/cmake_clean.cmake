file(REMOVE_RECURSE
  "CMakeFiles/fig10_preproc_speedup.dir/fig10_preproc_speedup.cpp.o"
  "CMakeFiles/fig10_preproc_speedup.dir/fig10_preproc_speedup.cpp.o.d"
  "fig10_preproc_speedup"
  "fig10_preproc_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_preproc_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
