file(REMOVE_RECURSE
  "CMakeFiles/table1_sequential_vs_picard.dir/table1_sequential_vs_picard.cpp.o"
  "CMakeFiles/table1_sequential_vs_picard.dir/table1_sequential_vs_picard.cpp.o.d"
  "table1_sequential_vs_picard"
  "table1_sequential_vs_picard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sequential_vs_picard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
