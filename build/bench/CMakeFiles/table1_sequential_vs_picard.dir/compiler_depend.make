# Empty compiler generated dependencies file for table1_sequential_vs_picard.
# This may be replaced when dependencies are built.
