# Empty dependencies file for fig12_fdr_speedup.
# This may be replaced when dependencies are built.
