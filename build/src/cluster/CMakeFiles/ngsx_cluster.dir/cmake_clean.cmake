file(REMOVE_RECURSE
  "CMakeFiles/ngsx_cluster.dir/clustersim.cpp.o"
  "CMakeFiles/ngsx_cluster.dir/clustersim.cpp.o.d"
  "CMakeFiles/ngsx_cluster.dir/costmodel.cpp.o"
  "CMakeFiles/ngsx_cluster.dir/costmodel.cpp.o.d"
  "libngsx_cluster.a"
  "libngsx_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngsx_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
