# Empty compiler generated dependencies file for ngsx_cluster.
# This may be replaced when dependencies are built.
