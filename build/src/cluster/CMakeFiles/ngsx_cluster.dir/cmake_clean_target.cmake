file(REMOVE_RECURSE
  "libngsx_cluster.a"
)
