file(REMOVE_RECURSE
  "CMakeFiles/ngsx_stats.dir/fdr.cpp.o"
  "CMakeFiles/ngsx_stats.dir/fdr.cpp.o.d"
  "CMakeFiles/ngsx_stats.dir/histogram.cpp.o"
  "CMakeFiles/ngsx_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/ngsx_stats.dir/nlmeans.cpp.o"
  "CMakeFiles/ngsx_stats.dir/nlmeans.cpp.o.d"
  "CMakeFiles/ngsx_stats.dir/peaks.cpp.o"
  "CMakeFiles/ngsx_stats.dir/peaks.cpp.o.d"
  "libngsx_stats.a"
  "libngsx_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngsx_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
