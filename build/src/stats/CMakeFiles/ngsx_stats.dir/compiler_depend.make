# Empty compiler generated dependencies file for ngsx_stats.
# This may be replaced when dependencies are built.
