file(REMOVE_RECURSE
  "libngsx_stats.a"
)
