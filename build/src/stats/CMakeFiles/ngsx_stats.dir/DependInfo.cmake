
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/fdr.cpp" "src/stats/CMakeFiles/ngsx_stats.dir/fdr.cpp.o" "gcc" "src/stats/CMakeFiles/ngsx_stats.dir/fdr.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/ngsx_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/ngsx_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/nlmeans.cpp" "src/stats/CMakeFiles/ngsx_stats.dir/nlmeans.cpp.o" "gcc" "src/stats/CMakeFiles/ngsx_stats.dir/nlmeans.cpp.o.d"
  "/root/repo/src/stats/peaks.cpp" "src/stats/CMakeFiles/ngsx_stats.dir/peaks.cpp.o" "gcc" "src/stats/CMakeFiles/ngsx_stats.dir/peaks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ngsx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/ngsx_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/ngsx_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ngsx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
