file(REMOVE_RECURSE
  "CMakeFiles/ngsx_core.dir/convert.cpp.o"
  "CMakeFiles/ngsx_core.dir/convert.cpp.o.d"
  "CMakeFiles/ngsx_core.dir/partition.cpp.o"
  "CMakeFiles/ngsx_core.dir/partition.cpp.o.d"
  "CMakeFiles/ngsx_core.dir/sort.cpp.o"
  "CMakeFiles/ngsx_core.dir/sort.cpp.o.d"
  "CMakeFiles/ngsx_core.dir/target.cpp.o"
  "CMakeFiles/ngsx_core.dir/target.cpp.o.d"
  "libngsx_core.a"
  "libngsx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngsx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
