
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/convert.cpp" "src/core/CMakeFiles/ngsx_core.dir/convert.cpp.o" "gcc" "src/core/CMakeFiles/ngsx_core.dir/convert.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/ngsx_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/ngsx_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/sort.cpp" "src/core/CMakeFiles/ngsx_core.dir/sort.cpp.o" "gcc" "src/core/CMakeFiles/ngsx_core.dir/sort.cpp.o.d"
  "/root/repo/src/core/target.cpp" "src/core/CMakeFiles/ngsx_core.dir/target.cpp.o" "gcc" "src/core/CMakeFiles/ngsx_core.dir/target.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/formats/CMakeFiles/ngsx_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/ngsx_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ngsx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
