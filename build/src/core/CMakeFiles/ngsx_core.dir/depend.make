# Empty dependencies file for ngsx_core.
# This may be replaced when dependencies are built.
