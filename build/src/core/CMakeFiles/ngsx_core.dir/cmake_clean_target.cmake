file(REMOVE_RECURSE
  "libngsx_core.a"
)
