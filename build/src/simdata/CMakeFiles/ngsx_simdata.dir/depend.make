# Empty dependencies file for ngsx_simdata.
# This may be replaced when dependencies are built.
