file(REMOVE_RECURSE
  "libngsx_simdata.a"
)
