file(REMOVE_RECURSE
  "CMakeFiles/ngsx_simdata.dir/histsim.cpp.o"
  "CMakeFiles/ngsx_simdata.dir/histsim.cpp.o.d"
  "CMakeFiles/ngsx_simdata.dir/readsim.cpp.o"
  "CMakeFiles/ngsx_simdata.dir/readsim.cpp.o.d"
  "CMakeFiles/ngsx_simdata.dir/reference.cpp.o"
  "CMakeFiles/ngsx_simdata.dir/reference.cpp.o.d"
  "libngsx_simdata.a"
  "libngsx_simdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngsx_simdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
