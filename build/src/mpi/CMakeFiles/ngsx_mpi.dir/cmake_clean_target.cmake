file(REMOVE_RECURSE
  "libngsx_mpi.a"
)
