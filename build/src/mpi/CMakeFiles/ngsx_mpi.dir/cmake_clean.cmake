file(REMOVE_RECURSE
  "CMakeFiles/ngsx_mpi.dir/minimpi.cpp.o"
  "CMakeFiles/ngsx_mpi.dir/minimpi.cpp.o.d"
  "libngsx_mpi.a"
  "libngsx_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngsx_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
