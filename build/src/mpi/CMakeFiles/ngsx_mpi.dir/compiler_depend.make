# Empty compiler generated dependencies file for ngsx_mpi.
# This may be replaced when dependencies are built.
