# Empty compiler generated dependencies file for ngsx_baseline.
# This may be replaced when dependencies are built.
