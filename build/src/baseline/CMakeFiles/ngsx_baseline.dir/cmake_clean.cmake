file(REMOVE_RECURSE
  "CMakeFiles/ngsx_baseline.dir/picardlike.cpp.o"
  "CMakeFiles/ngsx_baseline.dir/picardlike.cpp.o.d"
  "libngsx_baseline.a"
  "libngsx_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngsx_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
