file(REMOVE_RECURSE
  "libngsx_baseline.a"
)
