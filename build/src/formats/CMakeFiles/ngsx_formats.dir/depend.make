# Empty dependencies file for ngsx_formats.
# This may be replaced when dependencies are built.
