file(REMOVE_RECURSE
  "CMakeFiles/ngsx_formats.dir/bai.cpp.o"
  "CMakeFiles/ngsx_formats.dir/bai.cpp.o.d"
  "CMakeFiles/ngsx_formats.dir/baix2.cpp.o"
  "CMakeFiles/ngsx_formats.dir/baix2.cpp.o.d"
  "CMakeFiles/ngsx_formats.dir/bam.cpp.o"
  "CMakeFiles/ngsx_formats.dir/bam.cpp.o.d"
  "CMakeFiles/ngsx_formats.dir/bamx.cpp.o"
  "CMakeFiles/ngsx_formats.dir/bamx.cpp.o.d"
  "CMakeFiles/ngsx_formats.dir/bamxz.cpp.o"
  "CMakeFiles/ngsx_formats.dir/bamxz.cpp.o.d"
  "CMakeFiles/ngsx_formats.dir/bed.cpp.o"
  "CMakeFiles/ngsx_formats.dir/bed.cpp.o.d"
  "CMakeFiles/ngsx_formats.dir/bgzf.cpp.o"
  "CMakeFiles/ngsx_formats.dir/bgzf.cpp.o.d"
  "CMakeFiles/ngsx_formats.dir/bgzf_parallel.cpp.o"
  "CMakeFiles/ngsx_formats.dir/bgzf_parallel.cpp.o.d"
  "CMakeFiles/ngsx_formats.dir/fai.cpp.o"
  "CMakeFiles/ngsx_formats.dir/fai.cpp.o.d"
  "CMakeFiles/ngsx_formats.dir/sam.cpp.o"
  "CMakeFiles/ngsx_formats.dir/sam.cpp.o.d"
  "CMakeFiles/ngsx_formats.dir/textfmt.cpp.o"
  "CMakeFiles/ngsx_formats.dir/textfmt.cpp.o.d"
  "CMakeFiles/ngsx_formats.dir/validate.cpp.o"
  "CMakeFiles/ngsx_formats.dir/validate.cpp.o.d"
  "libngsx_formats.a"
  "libngsx_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngsx_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
