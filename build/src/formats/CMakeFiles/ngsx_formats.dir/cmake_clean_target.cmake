file(REMOVE_RECURSE
  "libngsx_formats.a"
)
