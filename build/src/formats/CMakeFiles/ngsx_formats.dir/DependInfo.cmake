
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/formats/bai.cpp" "src/formats/CMakeFiles/ngsx_formats.dir/bai.cpp.o" "gcc" "src/formats/CMakeFiles/ngsx_formats.dir/bai.cpp.o.d"
  "/root/repo/src/formats/baix2.cpp" "src/formats/CMakeFiles/ngsx_formats.dir/baix2.cpp.o" "gcc" "src/formats/CMakeFiles/ngsx_formats.dir/baix2.cpp.o.d"
  "/root/repo/src/formats/bam.cpp" "src/formats/CMakeFiles/ngsx_formats.dir/bam.cpp.o" "gcc" "src/formats/CMakeFiles/ngsx_formats.dir/bam.cpp.o.d"
  "/root/repo/src/formats/bamx.cpp" "src/formats/CMakeFiles/ngsx_formats.dir/bamx.cpp.o" "gcc" "src/formats/CMakeFiles/ngsx_formats.dir/bamx.cpp.o.d"
  "/root/repo/src/formats/bamxz.cpp" "src/formats/CMakeFiles/ngsx_formats.dir/bamxz.cpp.o" "gcc" "src/formats/CMakeFiles/ngsx_formats.dir/bamxz.cpp.o.d"
  "/root/repo/src/formats/bed.cpp" "src/formats/CMakeFiles/ngsx_formats.dir/bed.cpp.o" "gcc" "src/formats/CMakeFiles/ngsx_formats.dir/bed.cpp.o.d"
  "/root/repo/src/formats/bgzf.cpp" "src/formats/CMakeFiles/ngsx_formats.dir/bgzf.cpp.o" "gcc" "src/formats/CMakeFiles/ngsx_formats.dir/bgzf.cpp.o.d"
  "/root/repo/src/formats/bgzf_parallel.cpp" "src/formats/CMakeFiles/ngsx_formats.dir/bgzf_parallel.cpp.o" "gcc" "src/formats/CMakeFiles/ngsx_formats.dir/bgzf_parallel.cpp.o.d"
  "/root/repo/src/formats/fai.cpp" "src/formats/CMakeFiles/ngsx_formats.dir/fai.cpp.o" "gcc" "src/formats/CMakeFiles/ngsx_formats.dir/fai.cpp.o.d"
  "/root/repo/src/formats/sam.cpp" "src/formats/CMakeFiles/ngsx_formats.dir/sam.cpp.o" "gcc" "src/formats/CMakeFiles/ngsx_formats.dir/sam.cpp.o.d"
  "/root/repo/src/formats/textfmt.cpp" "src/formats/CMakeFiles/ngsx_formats.dir/textfmt.cpp.o" "gcc" "src/formats/CMakeFiles/ngsx_formats.dir/textfmt.cpp.o.d"
  "/root/repo/src/formats/validate.cpp" "src/formats/CMakeFiles/ngsx_formats.dir/validate.cpp.o" "gcc" "src/formats/CMakeFiles/ngsx_formats.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ngsx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
