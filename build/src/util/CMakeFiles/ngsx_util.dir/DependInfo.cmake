
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/binio.cpp" "src/util/CMakeFiles/ngsx_util.dir/binio.cpp.o" "gcc" "src/util/CMakeFiles/ngsx_util.dir/binio.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/util/CMakeFiles/ngsx_util.dir/cli.cpp.o" "gcc" "src/util/CMakeFiles/ngsx_util.dir/cli.cpp.o.d"
  "/root/repo/src/util/common.cpp" "src/util/CMakeFiles/ngsx_util.dir/common.cpp.o" "gcc" "src/util/CMakeFiles/ngsx_util.dir/common.cpp.o.d"
  "/root/repo/src/util/strutil.cpp" "src/util/CMakeFiles/ngsx_util.dir/strutil.cpp.o" "gcc" "src/util/CMakeFiles/ngsx_util.dir/strutil.cpp.o.d"
  "/root/repo/src/util/tempdir.cpp" "src/util/CMakeFiles/ngsx_util.dir/tempdir.cpp.o" "gcc" "src/util/CMakeFiles/ngsx_util.dir/tempdir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
