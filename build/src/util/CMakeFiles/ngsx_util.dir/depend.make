# Empty dependencies file for ngsx_util.
# This may be replaced when dependencies are built.
