file(REMOVE_RECURSE
  "libngsx_util.a"
)
