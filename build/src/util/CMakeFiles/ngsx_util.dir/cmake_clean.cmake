file(REMOVE_RECURSE
  "CMakeFiles/ngsx_util.dir/binio.cpp.o"
  "CMakeFiles/ngsx_util.dir/binio.cpp.o.d"
  "CMakeFiles/ngsx_util.dir/cli.cpp.o"
  "CMakeFiles/ngsx_util.dir/cli.cpp.o.d"
  "CMakeFiles/ngsx_util.dir/common.cpp.o"
  "CMakeFiles/ngsx_util.dir/common.cpp.o.d"
  "CMakeFiles/ngsx_util.dir/strutil.cpp.o"
  "CMakeFiles/ngsx_util.dir/strutil.cpp.o.d"
  "CMakeFiles/ngsx_util.dir/tempdir.cpp.o"
  "CMakeFiles/ngsx_util.dir/tempdir.cpp.o.d"
  "libngsx_util.a"
  "libngsx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngsx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
