# Empty compiler generated dependencies file for ngsx_util.
# This may be replaced when dependencies are built.
