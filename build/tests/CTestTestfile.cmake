# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/sam_test[1]_include.cmake")
include("/root/repo/build/tests/bgzf_test[1]_include.cmake")
include("/root/repo/build/tests/bam_test[1]_include.cmake")
include("/root/repo/build/tests/bai_test[1]_include.cmake")
include("/root/repo/build/tests/bamx_test[1]_include.cmake")
include("/root/repo/build/tests/textfmt_test[1]_include.cmake")
include("/root/repo/build/tests/simdata_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/convert_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_property_test[1]_include.cmake")
include("/root/repo/build/tests/bamxz_test[1]_include.cmake")
include("/root/repo/build/tests/baix2_test[1]_include.cmake")
include("/root/repo/build/tests/peaks_test[1]_include.cmake")
include("/root/repo/build/tests/sort_test[1]_include.cmake")
include("/root/repo/build/tests/validate_test[1]_include.cmake")
include("/root/repo/build/tests/corruption_test[1]_include.cmake")
include("/root/repo/build/tests/fai_test[1]_include.cmake")
include("/root/repo/build/tests/convert_edge_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_stress_test[1]_include.cmake")
include("/root/repo/build/tests/bed_test[1]_include.cmake")
include("/root/repo/build/tests/bgzf_parallel_test[1]_include.cmake")
include("/root/repo/build/tests/seqcodec_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_integration_test[1]_include.cmake")
