# Empty compiler generated dependencies file for baix2_test.
# This may be replaced when dependencies are built.
