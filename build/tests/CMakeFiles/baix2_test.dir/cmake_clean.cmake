file(REMOVE_RECURSE
  "CMakeFiles/baix2_test.dir/baix2_test.cpp.o"
  "CMakeFiles/baix2_test.dir/baix2_test.cpp.o.d"
  "baix2_test"
  "baix2_test.pdb"
  "baix2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baix2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
