file(REMOVE_RECURSE
  "CMakeFiles/peaks_test.dir/peaks_test.cpp.o"
  "CMakeFiles/peaks_test.dir/peaks_test.cpp.o.d"
  "peaks_test"
  "peaks_test.pdb"
  "peaks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peaks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
