# Empty compiler generated dependencies file for peaks_test.
# This may be replaced when dependencies are built.
