# Empty compiler generated dependencies file for bamx_test.
# This may be replaced when dependencies are built.
