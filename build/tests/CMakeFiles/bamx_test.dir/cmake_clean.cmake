file(REMOVE_RECURSE
  "CMakeFiles/bamx_test.dir/bamx_test.cpp.o"
  "CMakeFiles/bamx_test.dir/bamx_test.cpp.o.d"
  "bamx_test"
  "bamx_test.pdb"
  "bamx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bamx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
