# Empty compiler generated dependencies file for fai_test.
# This may be replaced when dependencies are built.
