file(REMOVE_RECURSE
  "CMakeFiles/fai_test.dir/fai_test.cpp.o"
  "CMakeFiles/fai_test.dir/fai_test.cpp.o.d"
  "fai_test"
  "fai_test.pdb"
  "fai_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fai_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
