file(REMOVE_RECURSE
  "CMakeFiles/sam_test.dir/sam_test.cpp.o"
  "CMakeFiles/sam_test.dir/sam_test.cpp.o.d"
  "sam_test"
  "sam_test.pdb"
  "sam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
