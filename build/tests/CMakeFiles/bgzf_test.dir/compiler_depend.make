# Empty compiler generated dependencies file for bgzf_test.
# This may be replaced when dependencies are built.
