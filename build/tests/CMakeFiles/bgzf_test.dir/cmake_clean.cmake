file(REMOVE_RECURSE
  "CMakeFiles/bgzf_test.dir/bgzf_test.cpp.o"
  "CMakeFiles/bgzf_test.dir/bgzf_test.cpp.o.d"
  "bgzf_test"
  "bgzf_test.pdb"
  "bgzf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgzf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
