file(REMOVE_RECURSE
  "CMakeFiles/convert_edge_test.dir/convert_edge_test.cpp.o"
  "CMakeFiles/convert_edge_test.dir/convert_edge_test.cpp.o.d"
  "convert_edge_test"
  "convert_edge_test.pdb"
  "convert_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convert_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
