# Empty compiler generated dependencies file for bed_test.
# This may be replaced when dependencies are built.
