file(REMOVE_RECURSE
  "CMakeFiles/bed_test.dir/bed_test.cpp.o"
  "CMakeFiles/bed_test.dir/bed_test.cpp.o.d"
  "bed_test"
  "bed_test.pdb"
  "bed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
