file(REMOVE_RECURSE
  "CMakeFiles/bam_test.dir/bam_test.cpp.o"
  "CMakeFiles/bam_test.dir/bam_test.cpp.o.d"
  "bam_test"
  "bam_test.pdb"
  "bam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
