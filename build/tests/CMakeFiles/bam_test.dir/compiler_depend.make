# Empty compiler generated dependencies file for bam_test.
# This may be replaced when dependencies are built.
