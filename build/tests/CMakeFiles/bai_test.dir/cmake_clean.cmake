file(REMOVE_RECURSE
  "CMakeFiles/bai_test.dir/bai_test.cpp.o"
  "CMakeFiles/bai_test.dir/bai_test.cpp.o.d"
  "bai_test"
  "bai_test.pdb"
  "bai_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bai_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
