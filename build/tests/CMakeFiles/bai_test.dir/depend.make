# Empty dependencies file for bai_test.
# This may be replaced when dependencies are built.
