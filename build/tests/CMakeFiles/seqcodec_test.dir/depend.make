# Empty dependencies file for seqcodec_test.
# This may be replaced when dependencies are built.
