file(REMOVE_RECURSE
  "CMakeFiles/seqcodec_test.dir/seqcodec_test.cpp.o"
  "CMakeFiles/seqcodec_test.dir/seqcodec_test.cpp.o.d"
  "seqcodec_test"
  "seqcodec_test.pdb"
  "seqcodec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqcodec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
