file(REMOVE_RECURSE
  "CMakeFiles/textfmt_test.dir/textfmt_test.cpp.o"
  "CMakeFiles/textfmt_test.dir/textfmt_test.cpp.o.d"
  "textfmt_test"
  "textfmt_test.pdb"
  "textfmt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textfmt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
