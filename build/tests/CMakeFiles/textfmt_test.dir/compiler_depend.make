# Empty compiler generated dependencies file for textfmt_test.
# This may be replaced when dependencies are built.
