file(REMOVE_RECURSE
  "CMakeFiles/bamxz_test.dir/bamxz_test.cpp.o"
  "CMakeFiles/bamxz_test.dir/bamxz_test.cpp.o.d"
  "bamxz_test"
  "bamxz_test.pdb"
  "bamxz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bamxz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
