# Empty compiler generated dependencies file for bamxz_test.
# This may be replaced when dependencies are built.
