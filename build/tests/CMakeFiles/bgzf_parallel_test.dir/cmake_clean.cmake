file(REMOVE_RECURSE
  "CMakeFiles/bgzf_parallel_test.dir/bgzf_parallel_test.cpp.o"
  "CMakeFiles/bgzf_parallel_test.dir/bgzf_parallel_test.cpp.o.d"
  "bgzf_parallel_test"
  "bgzf_parallel_test.pdb"
  "bgzf_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgzf_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
