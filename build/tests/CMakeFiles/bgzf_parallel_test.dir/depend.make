# Empty dependencies file for bgzf_parallel_test.
# This may be replaced when dependencies are built.
