add_test([=[PipelineIntegration.EndToEnd]=]  /root/repo/build/tests/pipeline_integration_test [==[--gtest_filter=PipelineIntegration.EndToEnd]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[PipelineIntegration.EndToEnd]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] TIMEOUT 300)
set(  pipeline_integration_test_TESTS PipelineIntegration.EndToEnd)
