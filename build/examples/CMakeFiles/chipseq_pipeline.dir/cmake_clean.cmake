file(REMOVE_RECURSE
  "CMakeFiles/chipseq_pipeline.dir/chipseq_pipeline.cpp.o"
  "CMakeFiles/chipseq_pipeline.dir/chipseq_pipeline.cpp.o.d"
  "chipseq_pipeline"
  "chipseq_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chipseq_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
