# Empty compiler generated dependencies file for chipseq_pipeline.
# This may be replaced when dependencies are built.
