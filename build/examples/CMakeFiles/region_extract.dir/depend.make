# Empty dependencies file for region_extract.
# This may be replaced when dependencies are built.
