file(REMOVE_RECURSE
  "CMakeFiles/region_extract.dir/region_extract.cpp.o"
  "CMakeFiles/region_extract.dir/region_extract.cpp.o.d"
  "region_extract"
  "region_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
