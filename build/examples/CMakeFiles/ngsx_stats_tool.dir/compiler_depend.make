# Empty compiler generated dependencies file for ngsx_stats_tool.
# This may be replaced when dependencies are built.
