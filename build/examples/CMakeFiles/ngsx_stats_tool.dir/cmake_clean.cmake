file(REMOVE_RECURSE
  "CMakeFiles/ngsx_stats_tool.dir/ngsx_stats.cpp.o"
  "CMakeFiles/ngsx_stats_tool.dir/ngsx_stats.cpp.o.d"
  "ngsx_stats"
  "ngsx_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngsx_stats_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
