file(REMOVE_RECURSE
  "CMakeFiles/ngsx_convert.dir/ngsx_convert.cpp.o"
  "CMakeFiles/ngsx_convert.dir/ngsx_convert.cpp.o.d"
  "ngsx_convert"
  "ngsx_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngsx_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
