# Empty compiler generated dependencies file for ngsx_convert.
# This may be replaced when dependencies are built.
