file(REMOVE_RECURSE
  "CMakeFiles/ngsx_validate.dir/ngsx_validate.cpp.o"
  "CMakeFiles/ngsx_validate.dir/ngsx_validate.cpp.o.d"
  "ngsx_validate"
  "ngsx_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngsx_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
