# Empty dependencies file for ngsx_validate.
# This may be replaced when dependencies are built.
