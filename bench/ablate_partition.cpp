// Ablation: Algorithm 1's two boundary-adjustment implementations (§III-A).
//
// The paper describes a forward variant (ranks 1..N-1 scan forward for the
// first line breaker, send their new start back) and a backward variant
// (ranks 0..N-2 scan backward, send their new end forward) and picks the
// forward one. This harness measures both on a real generated SAM file:
// scan cost, balance of the induced partitions, and the (tiny) share of
// total conversion time partitioning represents.

#include <cstdio>

#include "bench_util.h"
#include "core/convert.h"
#include "core/partition.h"
#include "simdata/readsim.h"
#include "util/cli.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace ngsx;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const uint64_t pairs = static_cast<uint64_t>(args.get_int("pairs", 30000));

  bench::print_header("Ablation: Algorithm 1 forward vs backward adjustment");
  TempDir tmp("ablate-part");
  auto genome = simdata::ReferenceGenome::simulate(
      simdata::mouse_like_references(2'000'000), 55);
  simdata::ReadSimConfig cfg;
  cfg.seed = 55;
  const std::string sam_path = tmp.file("d.sam");
  simdata::write_sam_dataset(sam_path, genome, pairs, cfg);
  sam::SamFileReader probe(sam_path);
  core::ByteRange body{probe.alignment_start_offset(), file_size(sam_path)};
  InputFile file(sam_path);

  std::printf("%6s %16s %16s %18s\n", "ranks", "forward (ms)",
              "backward (ms)", "max/min partition");
  for (int n : {4, 16, 64, 256}) {
    WallTimer tf;
    auto fwd = core::partition_sam_forward(file, body, n);
    double fwd_ms = tf.millis();
    WallTimer tb;
    auto bwd = core::partition_sam_backward(file, body, n);
    double bwd_ms = tb.millis();

    uint64_t lo = fwd[0].size();
    uint64_t hi = lo;
    for (const auto& r : fwd) {
      lo = std::min(lo, r.size());
      hi = std::max(hi, r.size());
    }
    std::printf("%6d %16.3f %16.3f %17.4fx\n", n, fwd_ms, bwd_ms,
                static_cast<double>(hi) / static_cast<double>(lo));
    NGSX_CHECK(fwd.front().begin == bwd.front().begin &&
               fwd.back().end == bwd.back().end);
  }

  // Partitioning vs conversion cost.
  core::ConvertOptions options;
  options.format = core::TargetFormat::kBed;
  options.ranks = 8;
  WallTimer tc;
  auto stats = core::convert_sam(sam_path, tmp.subdir("out"), options);
  double convert_s = tc.seconds();
  WallTimer tp;
  core::partition_sam_forward(file, body, 8);
  double part_s = tp.seconds();
  std::printf("\npartitioning is %.4f%% of an 8-rank SAM->BED conversion "
              "(%.1f ms vs %.2f s)\n",
              100.0 * part_s / convert_s, part_s * 1e3, convert_s);
  (void)stats;
  return 0;
}
