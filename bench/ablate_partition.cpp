// Ablation: Algorithm 1's two boundary-adjustment implementations (§III-A),
// plus static vs dynamic chunk scheduling on a skewed input.
//
// Part 1 — the paper describes a forward variant (ranks 1..N-1 scan forward
// for the first line breaker, send their new start back) and a backward
// variant (ranks 0..N-2 scan backward, send their new end forward) and
// picks the forward one. This harness measures both on a real generated
// SAM file: scan cost, balance of the induced partitions, and the (tiny)
// share of total conversion time partitioning represents.
//
// Part 2 — Algorithm 1 balances *bytes*, not *work*: a chromosome packed
// with short reads holds several times more records (and parse cost) per
// byte than the rest of the file, so the static schedule's rank covering
// it becomes the straggler. We build exactly that input (chr1 hot with
// short reads, everything else long reads), measure real per-chunk
// conversion costs, and compare the static makespan (each rank runs its
// own range) against the dynamic one (chunks claimed by the next free
// worker, as ConvertOptions{schedule=kDynamic} does on an exec::Pool) at
// the paper's core counts — the same measured-costs-into-simulated-cluster
// recipe as the other harnesses, since this container cannot time real
// multi-core speedups. Real static and dynamic runs are also executed and
// their part files checked byte-identical. Results go to stdout and, as
// JSON, to --json PATH.

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "bench_util.h"
#include "core/convert.h"
#include "core/partition.h"
#include "simdata/readsim.h"
#include "util/cli.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace ngsx;

namespace {

/// Writes a SAM whose chr1 records come from a short-read library and the
/// remaining chromosomes from a long-read one: ~the same bytes per
/// chromosome as an even simulation, but chr1 costs several times more to
/// parse per byte (more records, more per-record overhead).
std::vector<sam::AlignmentRecord> skewed_records(
    const simdata::ReferenceGenome& genome, uint64_t pairs, uint64_t seed) {
  simdata::ReadSimConfig hot;
  hot.seed = seed;
  hot.read_length = 40;  // simulator minimum; ~4x the records/byte of cold
  simdata::ReadSimConfig cold;
  cold.seed = seed + 1;
  cold.read_length = 150;
  std::vector<sam::AlignmentRecord> records;
  // Oversample the short-read library so chr1 reaches a byte share similar
  // to its genome share despite each record being small.
  for (const auto& rec : simdata::simulate_alignments(genome, pairs * 2, hot)) {
    if (rec.ref_id == 0) {
      records.push_back(rec);
    }
  }
  for (const auto& rec : simdata::simulate_alignments(genome, pairs, cold)) {
    if (rec.ref_id != 0) {
      records.push_back(rec);
    }
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const sam::AlignmentRecord& a,
                      const sam::AlignmentRecord& b) {
                     uint32_t ra = a.ref_id < 0 ? ~0u
                                                : static_cast<uint32_t>(a.ref_id);
                     uint32_t rb = b.ref_id < 0 ? ~0u
                                                : static_cast<uint32_t>(b.ref_id);
                     return ra != rb ? ra < rb : a.pos < b.pos;
                   });
  return records;
}

/// Greedy list schedule: chunks assigned in order to the earliest-free
/// worker (what dynamic chunk claiming converges to); returns the makespan.
double dynamic_makespan(const std::vector<double>& costs, int workers) {
  std::vector<double> busy(static_cast<size_t>(workers), 0.0);
  for (double c : costs) {
    *std::min_element(busy.begin(), busy.end()) += c;
  }
  return *std::max_element(busy.begin(), busy.end());
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const uint64_t pairs = static_cast<uint64_t>(args.get_int("pairs", 30000));

  bench::print_header("Ablation: Algorithm 1 forward vs backward adjustment");
  TempDir tmp("ablate-part");
  auto genome = simdata::ReferenceGenome::simulate(
      simdata::mouse_like_references(2'000'000), 55);
  simdata::ReadSimConfig cfg;
  cfg.seed = 55;
  const std::string sam_path = tmp.file("d.sam");
  simdata::write_sam_dataset(sam_path, genome, pairs, cfg);
  sam::SamFileReader probe(sam_path);
  core::ByteRange body{probe.alignment_start_offset(), file_size(sam_path)};
  InputFile file(sam_path);

  std::printf("%6s %16s %16s %18s\n", "ranks", "forward (ms)",
              "backward (ms)", "max/min partition");
  for (int n : {4, 16, 64, 256}) {
    WallTimer tf;
    auto fwd = core::partition_sam_forward(file, body, n);
    double fwd_ms = tf.millis();
    WallTimer tb;
    auto bwd = core::partition_sam_backward(file, body, n);
    double bwd_ms = tb.millis();

    uint64_t lo = fwd[0].size();
    uint64_t hi = lo;
    for (const auto& r : fwd) {
      lo = std::min(lo, r.size());
      hi = std::max(hi, r.size());
    }
    std::printf("%6d %16.3f %16.3f %17.4fx\n", n, fwd_ms, bwd_ms,
                static_cast<double>(hi) / static_cast<double>(lo));
    NGSX_CHECK(fwd.front().begin == bwd.front().begin &&
               fwd.back().end == bwd.back().end);
  }

  // Partitioning vs conversion cost.
  core::ConvertOptions options;
  options.format = core::TargetFormat::kBed;
  options.ranks = 8;
  WallTimer tc;
  auto stats = core::convert_sam(sam_path, tmp.subdir("out"), options);
  double convert_s = tc.seconds();
  WallTimer tp;
  core::partition_sam_forward(file, body, 8);
  double part_s = tp.seconds();
  std::printf("\npartitioning is %.4f%% of an 8-rank SAM->BED conversion "
              "(%.1f ms vs %.2f s)\n",
              100.0 * part_s / convert_s, part_s * 1e3, convert_s);
  (void)stats;

  // ------------------------------------------------------------------
  // Part 2: static vs dynamic scheduling on a skewed input.
  // ------------------------------------------------------------------
  bench::print_header("Ablation: static vs dynamic chunk scheduling");
  const uint64_t skew_pairs =
      static_cast<uint64_t>(args.get_int("skew-pairs", 12000));
  auto records = skewed_records(genome, skew_pairs, 91);
  const std::string skew_path = tmp.file("skew.sam");
  {
    sam::SamFileWriter w(skew_path, genome.header());
    for (const auto& rec : records) {
      w.write(rec);
    }
    w.close();
  }
  InputFile skew_file(skew_path);
  sam::SamFileReader skew_probe(skew_path);
  const core::ByteRange skew_body{skew_probe.alignment_start_offset(),
                                  file_size(skew_path)};

  // Real runs: the two schedules must emit byte-identical part files.
  core::ConvertOptions copt;
  copt.format = core::TargetFormat::kBed;
  copt.ranks = static_cast<int>(args.get_int("ranks", 8));
  copt.schedule = core::Schedule::kStatic;
  WallTimer ts;
  auto st = core::convert_sam(skew_path, tmp.subdir("sched-static"), copt);
  const double static_real_s = ts.seconds();
  copt.schedule = core::Schedule::kDynamic;
  WallTimer td;
  auto dy = core::convert_sam(skew_path, tmp.subdir("sched-dynamic"), copt);
  const double dynamic_real_s = td.seconds();
  bool identical = st.outputs.size() == dy.outputs.size();
  for (size_t i = 0; identical && i < st.outputs.size(); ++i) {
    identical = read_file(st.outputs[i]) == read_file(dy.outputs[i]);
  }
  NGSX_CHECK_MSG(identical, "schedules diverged: part files differ");
  std::printf("real %d-rank SAM->BED on this host: static %.3f s, "
              "dynamic %.3f s, part files byte-identical\n",
              copt.ranks, static_real_s, dynamic_real_s);

  // Measured per-chunk costs: parse + convert each fine chunk for real.
  const int n_fine = static_cast<int>(args.get_int("chunks", 256));
  auto fine = core::partition_sam_forward(skew_file, skew_body, n_fine);
  std::vector<double> costs;
  costs.reserve(fine.size());
  {
    const sam::SamHeader& header = skew_probe.header();
    sam::AlignmentRecord rec;
    for (const auto& range : fine) {
      // Chunk boundaries from Algorithm 1 are line-aligned, so the range
      // is whole lines: parse + convert them exactly as the dynamic
      // schedule's chunk worker does.
      WallTimer t;
      auto writer = core::make_target_writer(
          core::TargetFormat::kBed, tmp.file("scratch.bed"), header, false);
      std::string bytes = skew_file.read_at(
          range.begin, static_cast<size_t>(range.size()));
      size_t pos = 0;
      while (pos < bytes.size()) {
        size_t nl = bytes.find('\n', pos);
        size_t end = nl == std::string::npos ? bytes.size() : nl;
        if (end > pos && bytes[pos] != '@') {
          sam::parse_record(
              std::string_view(bytes.data() + pos, end - pos), header, rec);
          writer->write(rec);
        }
        pos = end + 1;
      }
      writer->close();
      costs.push_back(t.seconds());
    }
  }
  const auto [cheap, dear] = std::minmax_element(costs.begin(), costs.end());
  std::printf("%d measured chunks; per-chunk cost skew max/min = %.2fx\n",
              n_fine, *dear / std::max(*cheap, 1e-9));

  // Project makespans: static = each rank runs its contiguous chunk span;
  // dynamic = chunks claimed in order by the next free worker.
  std::printf("%6s %14s %15s %9s\n", "cores", "static (s)", "dynamic (s)",
              "gain");
  std::string json = "{\n  \"skew_pairs\": " + std::to_string(skew_pairs) +
                     ",\n  \"chunks\": " + std::to_string(n_fine) +
                     ",\n  \"real\": {\"ranks\": " + std::to_string(copt.ranks) +
                     ", \"static_s\": " + std::to_string(static_real_s) +
                     ", \"dynamic_s\": " + std::to_string(dynamic_real_s) +
                     ", \"byte_identical\": true},\n  \"projection\": [";
  bool first = true;
  for (int cores : {2, 4, 8, 16, 32}) {
    auto ranges = core::partition_sam_forward(skew_file, skew_body, cores);
    std::vector<double> rank_cost(static_cast<size_t>(cores), 0.0);
    for (size_t i = 0; i < fine.size(); ++i) {
      // A fine chunk belongs to the static rank whose range contains it.
      size_t r = 0;
      while (r + 1 < ranges.size() && fine[i].begin >= ranges[r].end) {
        ++r;
      }
      rank_cost[r] += costs[i];
    }
    const double static_s =
        *std::max_element(rank_cost.begin(), rank_cost.end());
    const double dynamic_s = dynamic_makespan(costs, cores);
    std::printf("%6d %14.3f %15.3f %8.2fx\n", cores, static_s, dynamic_s,
                static_s / dynamic_s);
    json += std::string(first ? "" : ",") + "\n    {\"cores\": " +
            std::to_string(cores) + ", \"static_s\": " +
            std::to_string(static_s) + ", \"dynamic_s\": " +
            std::to_string(dynamic_s) + "}";
    first = false;
  }
  json += "\n  ]\n}\n";
  const std::string json_path = args.get("json", "ablate_partition.json");
  std::ofstream(json_path) << json;
  std::printf("JSON written to %s\n", json_path.c_str());
  bench::note("dynamic >= static everywhere: byte-balanced static ranges "
              "leave the short-read chromosome's rank as the straggler");
  return 0;
}
