// Figure 7 reproduction: full-conversion speedup of the BAM format
// converter.
//
// Paper (§V-C): a sorted 117 GB BAM dataset, preprocessed once into
// BAMX/BAIX, converted into BED, BEDGRAPH and FASTA on 1..128 cores.
// Reported shape: scales well, credited to (1) the perfectly-aligned
// padded BAMX records giving a regular I/O pattern and (2) fully
// independent per-rank conversion tasks.
//
// Method: calibrate the BAMX decode + format costs from real runs, then
// replay the 117 GB-scale conversion phase (preprocessing excluded, as in
// the figure) through the cluster simulator.

#include <cstdio>

#include "bench_util.h"
#include "cluster/costmodel.h"
#include "util/cli.h"

using namespace ngsx;
using cluster::ConversionJob;
using cluster::IoPattern;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const uint64_t pairs = static_cast<uint64_t>(args.get_int("pairs", 15000));

  bench::print_header("Figure 7: BAM format converter full-conversion speedup");
  auto costs = cluster::calibrate_conversion(pairs, /*seed=*/7);
  cluster::ClusterSim sim(bench::paper_cluster());

  // 117 GB of BAM expands into records; the conversion phase reads the
  // BAMX form (fixed stride, larger but regular).
  const uint64_t records = static_cast<uint64_t>(
      bench::kFig7BamBytes / costs.bam_bytes_per_record);
  const double bamx_bytes = records * costs.bamx_bytes_per_record;
  const double cpu_factor = bench::opteron_cpu_factor(
      costs,
      costs.sam_parse + costs.format_cpu.at(core::TargetFormat::kFastq));
  std::printf("scaled dataset: 117 GB BAM = %.1fM records; BAMX form %.0f GB"
              " (stride %.0f B)\n",
              records / 1e6, bamx_bytes / (1ull << 30),
              costs.bamx_bytes_per_record);

  const std::vector<int> cores = {1, 2, 4, 8, 16, 32, 64, 128};
  for (auto format : {core::TargetFormat::kBed, core::TargetFormat::kBedgraph,
                      core::TargetFormat::kFasta}) {
    ConversionJob job;
    job.records = records;
    job.input_bytes = bamx_bytes;
    job.cpu_per_record =
        cpu_factor * (costs.bamx_decode + costs.format_cpu.at(format));
    job.out_bytes_per_record = costs.out_bytes_per_record.at(format);
    job.read_pattern = IoPattern::kRegular;  // the BAMX layout-regularity win
    auto series = cluster::speedup_series(sim, cores, [&](int p) {
      return cluster::conversion_work(job, p);
    });
    bench::print_series("BAM(X) -> " +
                            std::string(core::target_format_name(format)),
                        series);
  }

  std::printf(
      "\npaper shape: near-linear scaling to 128 cores for all three\n"
      "targets; conversion tasks are independent and BAMX reads regular.\n");
  return 0;
}
