// Micro-benchmarks for the statistics kernels: NL-means window cost
// scaling, FDR per-bin cost scaling in B, histogram accumulation, and
// region calling — the measured constants the figure replays are built
// from.

#include <benchmark/benchmark.h>

#include "simdata/histsim.h"
#include "simdata/readsim.h"
#include "stats/fdr.h"
#include "stats/histogram.h"
#include "stats/nlmeans.h"
#include "stats/peaks.h"

namespace {

using namespace ngsx;

const std::vector<double>& signal() {
  static const std::vector<double> data = [] {
    simdata::HistSimConfig cfg;
    cfg.seed = 2024;
    return simdata::simulate_histogram(20000, cfg);
  }();
  return data;
}

void BM_NlMeansWindow(benchmark::State& state) {
  stats::NlMeansParams params;
  params.r = static_cast<int>(state.range(0));
  params.l = 15;
  const auto& data = signal();
  // Denoise a slice so iterations stay ~ms even at r=320.
  std::vector<double> out(500);
  for (auto _ : state) {
    stats::nlmeans_range(data, 1000, 1500, params, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 500);
}
BENCHMARK(BM_NlMeansWindow)->Arg(20)->Arg(80)->Arg(320);

void BM_FdrFused(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  simdata::HistSimConfig cfg;
  cfg.seed = 7;
  auto hist = simdata::simulate_histogram(2000, cfg);
  auto sims = simdata::simulate_null_batch(2000, static_cast<size_t>(b),
                                           cfg.background_rate, 7);
  for (auto _ : state) {
    auto res = stats::fdr_fused(hist, sims, b / 20);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_FdrFused)->Arg(10)->Arg(40)->Arg(80);

void BM_FdrTwoPass(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  simdata::HistSimConfig cfg;
  cfg.seed = 7;
  auto hist = simdata::simulate_histogram(2000, cfg);
  auto sims = simdata::simulate_null_batch(2000, static_cast<size_t>(b),
                                           cfg.background_rate, 7);
  for (auto _ : state) {
    auto res = stats::fdr_parallel_two_pass(hist, sims, b / 20, 1);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_FdrTwoPass)->Arg(40)->Arg(80);

void BM_HistogramAdd(benchmark::State& state) {
  auto genome = simdata::ReferenceGenome::simulate(
      simdata::mouse_like_references(500000), 3);
  simdata::ReadSimConfig cfg;
  cfg.seed = 3;
  auto records = simdata::simulate_alignments(genome, 2000, cfg);
  stats::CoverageHistogram hist(genome.header(), 25);
  size_t i = 0;
  for (auto _ : state) {
    hist.add(records[i % records.size()]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramAdd);

void BM_CallRegions(benchmark::State& state) {
  simdata::HistSimConfig cfg;
  cfg.seed = 11;
  cfg.peak_density = 0.002;
  auto hist = simdata::simulate_histogram(10000, cfg);
  auto sims =
      simdata::simulate_null_batch(10000, 12, cfg.background_rate, 11);
  for (auto _ : state) {
    auto regions = stats::call_enriched_regions(hist, sims, 1, 3, 1);
    benchmark::DoNotOptimize(regions);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_CallRegions);

}  // namespace

BENCHMARK_MAIN();
