// Figure 8 reproduction: partial-conversion performance of the BAM format
// converter.
//
// Paper (§V-D): chromosome-region subsets covering 20/40/60/80/100% of the
// 117 GB sorted BAM dataset are converted to SAM on 8..128 cores. Reported
// shape: conversion time is approximately proportional to the subset size
// at every core count, because locating the region via binary search over
// the BAIX is trivial next to the conversion itself.
//
// Method: (1) functionally exercise real partial conversion on a synthetic
// dataset, measuring the BAIX lookup cost to substantiate the "trivial
// overhead" claim; (2) replay the paper-scale subsets through the cluster
// simulator and print the time matrix.

#include <cstdio>

#include "bench_util.h"
#include "cluster/costmodel.h"
#include "core/convert.h"
#include "simdata/readsim.h"
#include "util/cli.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace ngsx;
using cluster::ConversionJob;
using cluster::IoPattern;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const uint64_t pairs = static_cast<uint64_t>(args.get_int("pairs", 15000));

  bench::print_header("Figure 8: BAM partial-conversion performance");

  // ---- real partial conversions on a synthetic dataset -------------------
  TempDir tmp("fig8");
  auto genome = simdata::ReferenceGenome::simulate(
      {sam::Reference{"chr1", 8'000'000}}, 8);
  simdata::ReadSimConfig rcfg;
  rcfg.seed = 8;
  const std::string bam_path = tmp.file("in.bam");
  simdata::write_bam_dataset(bam_path, genome, pairs, rcfg);
  auto pre = core::preprocess_bam(bam_path, tmp.file("in.bamx"),
                                  tmp.file("in.baix"));

  // BAIX lookup cost: time the binary search alone.
  auto baix = bamx::BaixIndex::load(tmp.file("in.baix"));
  WallTimer lookup_timer;
  size_t hits = 0;
  for (int i = 0; i < 1000; ++i) {
    auto [lo, hi] = baix.query(0, i * 1000, i * 1000 + 500000);
    hits += hi - lo;
  }
  double lookup_us = lookup_timer.seconds() * 1e6 / 1000;
  (void)hits;

  std::printf("real run (%llu pairs): subset -> records, conversion time\n",
              static_cast<unsigned long long>(pairs));
  core::ConvertOptions options;
  options.format = core::TargetFormat::kSam;
  options.ranks = 4;
  double t100 = 0;
  for (int pct : {20, 40, 60, 80, 100}) {
    core::Region region{0, 0,
                        static_cast<int32_t>(8'000'000LL * pct / 100)};
    auto stats = core::convert_bamx(
        tmp.file("in.bamx"), tmp.file("in.baix"),
        tmp.subdir("out" + std::to_string(pct)), options, region);
    if (pct == 100) {
      t100 = stats.seconds;
    }
    std::printf("  %3d%%: %8llu records, %7.3f s\n", pct,
                static_cast<unsigned long long>(stats.records_in),
                stats.seconds);
  }
  std::printf("  BAIX binary-search lookup: %.1f us per region "
              "(vs %.0f ms for the smallest conversion) -> trivial\n",
              lookup_us, t100 * 1e3 / 5);

  // ---- paper-scale replay -------------------------------------------------
  auto costs = cluster::calibrate_conversion(pairs / 2, /*seed=*/18);
  cluster::ClusterSim sim(bench::paper_cluster());
  const uint64_t records = static_cast<uint64_t>(
      bench::kFig7BamBytes / costs.bam_bytes_per_record);
  const double cpu_factor = bench::opteron_cpu_factor(
      costs,
      costs.sam_parse + costs.format_cpu.at(core::TargetFormat::kFastq));

  std::printf("\npaper-scale (117 GB BAM -> SAM), conversion time (s):\n");
  std::printf("%8s", "cores");
  for (int pct : {20, 40, 60, 80, 100}) {
    std::printf(" %8d%%", pct);
  }
  std::printf("\n");
  for (int p : {8, 16, 32, 64, 128}) {
    std::printf("%8d", p);
    for (int pct : {20, 40, 60, 80, 100}) {
      ConversionJob job;
      job.records = records * static_cast<uint64_t>(pct) / 100;
      job.input_bytes =
          static_cast<double>(job.records) * costs.bamx_bytes_per_record;
      job.cpu_per_record =
          cpu_factor * (costs.bamx_decode +
                        costs.format_cpu.at(core::TargetFormat::kSam));
      job.out_bytes_per_record =
          costs.out_bytes_per_record.at(core::TargetFormat::kSam);
      job.read_pattern = IoPattern::kRegular;
      double t = sim.run(cluster::conversion_work(job, p)).makespan;
      std::printf(" %9.1f", t);
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: times ~proportional to subset size at every\n"
              "core count; region lookup overhead trivial.\n");
  (void)pre;
  return 0;
}
