// Ablation: the summation permutation of Algorithm 2 (§IV-B).
//
// The paper's design choice: fuse the FDR numerator and denominator
// reductions into one bin sweep with a single gather, instead of two
// passes separated by a global synchronization. This harness measures the
// real cost of both on this machine across B, and the modeled effect of
// the extra synchronization at paper scale.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "simdata/histsim.h"
#include "stats/fdr.h"
#include "util/cli.h"
#include "util/timer.h"

using namespace ngsx;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const size_t bins = static_cast<size_t>(args.get_int("bins", 4000));

  bench::print_header("Ablation: FDR summation permutation (fused vs two-pass)");
  std::printf("%6s %14s %14s %10s\n", "B", "two-pass (s)", "fused (s)",
              "saving");
  for (int b : {10, 20, 40, 80}) {
    simdata::HistSimConfig cfg;
    cfg.seed = 99;
    auto hist = simdata::simulate_histogram(bins, cfg);
    auto sims = simdata::simulate_null_batch(bins, static_cast<size_t>(b),
                                             cfg.background_rate, 99);
    const int p_t = b / 20;

    // Best-of-5: the fusion effect is a few percent, below scheduler noise
    // on a single uncontrolled run.
    double two_s = 1e300;
    double fused_s = 1e300;
    stats::FdrResult two{};
    stats::FdrResult fused{};
    for (int rep = 0; rep < 5; ++rep) {
      WallTimer t1;
      two = stats::fdr_parallel_two_pass(hist, sims, p_t, 1);
      two_s = std::min(two_s, t1.seconds());
      WallTimer t2;
      fused = stats::fdr_fused(hist, sims, p_t);
      fused_s = std::min(fused_s, t2.seconds());
    }
    NGSX_CHECK(two.fdr == fused.fdr);

    std::printf("%6d %14.4f %14.4f %9.1f%%\n", b, two_s, fused_s,
                100.0 * (two_s - fused_s) / two_s);
  }

  // Synchronization cost at scale: the two-pass variant pays one extra
  // barrier + gather per FDR evaluation; threshold selection sweeps
  // B+1 = 81 thresholds.
  cluster::ClusterSim sim(bench::paper_cluster());
  for (int p : {64, 256}) {
    double extra = sim.collective_cost(p) * 2;  // barrier + second gather
    std::printf("extra synchronization per evaluation at %d ranks: %.1f us"
                " (x81 thresholds = %.2f ms per selection sweep)\n",
                p, extra * 1e6, extra * 81 * 1e3);
  }
  return 0;
}
