// BGZF decode-pipeline benchmark: sequential bgzf::Reader vs
// bgzf::ParallelReader over the same file, across decode-thread counts and
// readahead depths, plus an analytic pipeline model calibrated from the
// measured per-block costs.
//
// Emits BENCH_decode.json (path configurable with --json) with two
// sections:
//
//   "measured": real wall-clock MB/s on this machine. On a single-core
//     container the parallel reader cannot beat the sequential one — the
//     oversubscribed threads time-slice one core and add coordination
//     overhead — so these numbers chiefly demonstrate that the overhead
//     is modest.
//   "modeled": throughput predicted from the measured serial per-block
//     costs (framing scan vs inflate) under P genuinely concurrent
//     workers: MB/s = bytes / (n_blocks * max(t_scan, t_inflate / P)).
//     The framing scan is the sequential residue (Amdahl term) of the
//     decode pipeline; inflate is ~two orders of magnitude heavier, so
//     the model scales near-linearly until P approaches their ratio.
//
// Usage: bench_decode [--mb N] [--json PATH]

#include <cstdio>
#include <string>
#include <vector>

#include "formats/bgzf.h"
#include "formats/bgzf_parallel.h"
#include "obs/metrics.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace ngsx;

namespace {

/// Compressible but not degenerate payload (random bases + quality-ish
/// runs), roughly the entropy of real BAM payload bytes.
std::string make_payload(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string s(n, '\0');
  for (auto& c : s) {
    c = "ACGTNacgt()0123456789IIIIJJJJHHHH"[rng.below(32)];
  }
  return s;
}

double drain_mbps(bgzf::ReaderBase& reader, size_t payload_bytes) {
  WallTimer timer;
  char buf[1 << 16];
  uint64_t total = 0;
  size_t got;
  while ((got = reader.read(buf, sizeof(buf))) > 0) {
    total += got;
  }
  double seconds = timer.seconds();
  if (total != payload_bytes) {
    std::fprintf(stderr, "FATAL: drained %llu of %zu bytes\n",
                 static_cast<unsigned long long>(total), payload_bytes);
    std::exit(1);
  }
  return payload_bytes / 1e6 / seconds;
}

struct Measured {
  std::string reader;
  int threads = 0;
  size_t readahead = 0;
  double mbps = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const size_t mb = static_cast<size_t>(args.get_int("mb", 64));
  const std::string json_path = args.get("json", "BENCH_decode.json");
  const int repeats = static_cast<int>(args.get_int("repeats", 3));

  // The observability layer runs armed for the whole benchmark so the
  // emitted JSON carries the bgzf/io counters alongside the throughput
  // numbers (the "obs" section below).
  obs::enable_metrics();

  TempDir tmp("bench_decode");
  const std::string path = tmp.file("input.bgzf");
  const size_t payload_bytes = mb << 20;
  std::printf("=== BGZF decode pipeline: sequential vs parallel ===\n");
  std::printf("dataset: %zu MB uncompressed payload\n", mb);
  {
    std::string payload = make_payload(payload_bytes, 4242);
    bgzf::Writer w(path);
    w.write(payload);
    w.close();
  }
  const uint64_t compressed = file_size(path);

  // ------------------------------------------------- per-block serial costs
  // Scan cost: walk the framing headers without inflating.
  size_t n_blocks = 0;
  double scan_us_per_block;
  {
    std::string bytes = read_file(path);
    WallTimer timer;
    for (size_t pos = 0; pos + bgzf::kBlockHeaderSize <= bytes.size();) {
      pos += bgzf::peek_block_size(std::string_view(bytes).substr(pos));
      ++n_blocks;
    }
    scan_us_per_block = timer.seconds() * 1e6 / n_blocks;
  }
  // Inflate cost: one reused z_stream over every block, serially.
  double inflate_us_per_block;
  {
    std::string bytes = read_file(path);
    bgzf::Inflater inflater;
    std::string out;
    WallTimer timer;
    for (size_t pos = 0; pos + bgzf::kBlockHeaderSize <= bytes.size();) {
      size_t total = bgzf::peek_block_size(std::string_view(bytes).substr(pos));
      out.clear();
      inflater.decompress(std::string_view(bytes).substr(pos, total), out);
      pos += total;
    }
    inflate_us_per_block = timer.seconds() * 1e6 / n_blocks;
  }
  std::printf("%zu blocks (%.1f MB compressed): scan %.2f us/block, "
              "inflate %.2f us/block (ratio %.0fx)\n",
              n_blocks, compressed / 1e6, scan_us_per_block,
              inflate_us_per_block, inflate_us_per_block / scan_us_per_block);

  // ------------------------------------------------------------- measured
  std::vector<Measured> measured;
  auto record_best = [&](const std::string& reader_name, int threads,
                         size_t readahead, auto open) {
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
      auto reader = open();
      best = std::max(best, drain_mbps(*reader, payload_bytes));
    }
    measured.push_back(Measured{reader_name, threads, readahead, best});
    std::printf("  %-10s threads=%d readahead=%-3zu  %8.1f MB/s\n",
                reader_name.c_str(), threads, readahead, best);
  };

  std::printf("measured (best of %d runs):\n", repeats);
  record_best("sequential", 1, 1, [&] {
    return std::make_unique<bgzf::Reader>(path);
  });
  for (int threads : {1, 2, 4, 8}) {
    record_best("parallel", threads, bgzf::kDefaultReadahead, [&] {
      return std::make_unique<bgzf::ParallelReader>(path, threads);
    });
  }
  for (size_t readahead : {4ul, 128ul}) {
    record_best("parallel", 2, readahead, [&] {
      return std::make_unique<bgzf::ParallelReader>(path, 2, readahead);
    });
  }

  // -------------------------------------------------------------- modeled
  // With P concurrent inflate workers the pipeline's steady-state rate is
  // set by its slowest stage: the serial framing scan or the parallel
  // inflate at t_inflate / P per block.
  const std::vector<int> model_threads = {1, 2, 4, 8, 16};
  std::vector<double> modeled_mbps;
  std::printf("modeled (P concurrent workers, from serial per-block costs):\n");
  for (int p : model_threads) {
    double us_per_block =
        std::max(scan_us_per_block, inflate_us_per_block / p);
    double mbps = payload_bytes / 1e6 / (n_blocks * us_per_block / 1e6);
    modeled_mbps.push_back(mbps);
    std::printf("  P=%-2d %8.1f MB/s (%.2fx)\n", p, mbps,
                mbps / modeled_mbps.front());
  }

  // ----------------------------------------------------------------- JSON
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"payload_mb\": %zu,\n", mb);
  std::fprintf(f, "  \"compressed_mb\": %.2f,\n", compressed / 1e6);
  std::fprintf(f, "  \"blocks\": %zu,\n", n_blocks);
  std::fprintf(f, "  \"scan_us_per_block\": %.3f,\n", scan_us_per_block);
  std::fprintf(f, "  \"inflate_us_per_block\": %.3f,\n", inflate_us_per_block);
  std::fprintf(f, "  \"measured\": [\n");
  for (size_t i = 0; i < measured.size(); ++i) {
    const Measured& m = measured[i];
    std::fprintf(f,
                 "    {\"reader\": \"%s\", \"threads\": %d, "
                 "\"readahead\": %zu, \"mb_per_s\": %.1f}%s\n",
                 m.reader.c_str(), m.threads, m.readahead, m.mbps,
                 i + 1 < measured.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"modeled\": [\n");
  for (size_t i = 0; i < model_threads.size(); ++i) {
    std::fprintf(f,
                 "    {\"threads\": %d, \"mb_per_s\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 model_threads[i], modeled_mbps[i],
                 modeled_mbps[i] / modeled_mbps.front(),
                 i + 1 < model_threads.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Full ngsx.metrics.v1 snapshot (docs/OBSERVABILITY.md): block counts,
  // bytes in/out and inflate latency histograms for every run above.
  std::fprintf(f, "  \"obs\": %s\n}\n", obs::metrics_json().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
