// Table I reproduction: sequential comparison against Picard.
//
// Paper (§V-A, Table I), chr1-region datasets (37.54 GB SAM / 7.72 GB BAM):
//   SAM -> FASTQ: ours w/o preprocessing 3214 s, ours w/ preprocessing
//                 2804 s, Picard 3121 s  (preproc ~10% faster than Picard)
//   BAM -> SAM:   ours w/o preprocessing 2043 s, ours w/ preprocessing
//                 1548 s, Picard 1425 s  (Picard ~30% faster than ours
//                 w/o preprocessing, slightly faster than w/ preprocessing)
//
// Here the same three implementations run on a scaled chr1 dataset:
//   - ours w/o preprocessing: the native SAM converter (1 rank), and for
//     BAM the BamTools-style reader + adaptation path the paper used;
//   - ours w/ preprocessing: conversion reading the preprocessed BAMX
//     (preprocessing cost reported separately, as in the paper);
//   - Picard: the boxed-record SAM-JDK-style comparator.
// Absolute seconds differ from the paper (different machine and dataset
// scale); the reported quantity is each column's time and the ratio table.

#include <algorithm>
#include <cstdio>
#include <functional>

#include "baseline/picardlike.h"
#include "bench_util.h"
#include "core/convert.h"
#include "simdata/readsim.h"
#include "util/cli.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace ngsx;

namespace {

/// Best-of-3: single-run timings on this shared container are polluted by
/// page-cache writeback from preceding phases; the minimum is the stable
/// estimator of each converter's cost.
double timed(const std::function<void()>& body) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    WallTimer t;
    body();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const uint64_t pairs = static_cast<uint64_t>(args.get_int("pairs", 40000));

  bench::print_header("Table I: sequential comparison against Picard");
  std::printf("dataset: chr1-region synthetic, %llu read pairs\n",
              static_cast<unsigned long long>(pairs));

  // chr1-only dataset, as in the paper's Table I experiment.
  TempDir tmp("table1");
  auto genome = simdata::ReferenceGenome::simulate(
      {sam::Reference{"chr1", 4'000'000}}, 1);
  simdata::ReadSimConfig cfg;
  cfg.seed = 1;
  const std::string sam_path = tmp.file("chr1.sam");
  const std::string bam_path = tmp.file("chr1.bam");
  simdata::write_sam_dataset(sam_path, genome, pairs, cfg);
  simdata::write_bam_dataset(bam_path, genome, pairs, cfg);
  std::printf("sizes: SAM %.1f MB, BAM %.1f MB\n",
              file_size(sam_path) / 1e6, file_size(bam_path) / 1e6);

  // --------------------------------------------------------- SAM -> FASTQ
  core::ConvertOptions seq_opts;
  seq_opts.format = core::TargetFormat::kFastq;
  seq_opts.ranks = 1;

  double sam_fastq_ours = timed([&] {
    core::convert_sam(sam_path, tmp.subdir("s2f-ours"), seq_opts);
  });

  // Preprocessing-optimized path: SAM -> BAMX once, then convert from BAMX.
  auto pre = core::preprocess_sam_parallel(sam_path, tmp.subdir("s2f-pre"), 1);
  double sam_fastq_pre = timed([&] {
    core::convert_bamx_shards(pre.bamx_paths, tmp.subdir("s2f-conv"),
                              seq_opts);
  });

  double sam_fastq_picard = timed([&] {
    baseline::picard_sam_to_fastq(sam_path, tmp.file("picard.fastq"));
  });

  // ----------------------------------------------------------- BAM -> SAM
  double bam_sam_ours = timed([&] {
    baseline::convert_bam_via_bamtools(bam_path, tmp.file("via.sam"), "sam");
  });

  auto bam_pre = core::preprocess_bam(bam_path, tmp.file("b.bamx"),
                                      tmp.file("b.baix"));
  core::ConvertOptions b2s_opts;
  b2s_opts.format = core::TargetFormat::kSam;
  b2s_opts.ranks = 1;
  double bam_sam_pre = timed([&] {
    core::convert_bamx(tmp.file("b.bamx"), tmp.file("b.baix"),
                       tmp.subdir("b2s-conv"), b2s_opts);
  });

  double bam_sam_picard = timed([&] {
    baseline::picard_bam_to_sam(bam_path, tmp.file("picard.sam"));
  });

  // ----------------------------------------------------------- the table
  std::printf("\n%-14s %22s %22s %10s\n", "Avg. time (s)",
              "Ours w/o preprocessing", "Ours w/ preprocessing", "Picard");
  std::printf("%-14s %22.2f %22.2f %10.2f\n", "SAM -> FASTQ", sam_fastq_ours,
              sam_fastq_pre, sam_fastq_picard);
  std::printf("%-14s %22.2f %22.2f %10.2f\n", "BAM -> SAM", bam_sam_ours,
              bam_sam_pre, bam_sam_picard);

  std::printf("\nratios vs Picard (paper's shape in parentheses):\n");
  std::printf("  SAM->FASTQ  w/o preproc / picard = %.2f   (paper 3214/3121 = 1.03)\n",
              sam_fastq_ours / sam_fastq_picard);
  std::printf("  SAM->FASTQ  w/  preproc / picard = %.2f   (paper 2804/3121 = 0.90)\n",
              sam_fastq_pre / sam_fastq_picard);
  std::printf("  BAM->SAM    w/o preproc / picard = %.2f   (paper 2043/1425 = 1.43)\n",
              bam_sam_ours / bam_sam_picard);
  std::printf("  BAM->SAM    w/  preproc / picard = %.2f   (paper 1548/1425 = 1.09)\n",
              bam_sam_pre / bam_sam_picard);
  std::printf(
      "  (one-time preprocessing, excluded per the paper: SAM %.2f s, BAM %.2f s)\n",
      pre.seconds, bam_pre.seconds);
  return 0;
}
