// Transport benchmark: the same minimpi operations measured over every
// backend (threads ranks, shm ring-buffer processes, tcp loopback
// processes), plus the paper-cluster simulator's communication parameters
// for the "simulated vs real ranks" comparison in EXPERIMENTS.md.
//
// Emits BENCH_transport.json (path configurable with --json):
//
//   "backends": per-transport measurements —
//       setup_s        one empty mpi::run() at `ranks` ranks: world
//                      bootstrap + teardown (fork/exec, shm mapping, tcp
//                      mesh dial-in are all in here)
//       pingpong_us    half round-trip of an 8-byte message, rank 0 <-> 1
//       bandwidth_mbps 0 -> 1 stream of `--mb` MiB messages, acked
//       barrier_us     one N-rank barrier
//       allreduce_us   one N-rank allreduce_sum<int64_t>
//       halo_us        one NL-means-style halo step: every rank exchanges
//                      8 KiB with both neighbours, then a barrier
//   "simulated": the discrete-event cluster model's communication
//       constants (bench_util.h paper_cluster()), for calibrating the
//       simulator's collective costs against the real transports.
//
// The threads backend measures pure mailbox/condition-variable cost; shm
// adds ring copies + futex wakeups across address spaces; tcp adds the
// loopback stack. Run under perf or with --reps scaled up for profiling.
//
// Usage: bench_transport [--ranks N] [--reps R] [--mb M] [--json PATH]

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "mpi/minimpi.h"
#include "obs/metrics.h"
#include "util/cli.h"
#include "util/timer.h"

using namespace ngsx;

namespace {

struct BackendResult {
  std::string backend;
  double setup_s = 0.0;
  double pingpong_us = 0.0;
  double bandwidth_mbps = 0.0;
  double barrier_us = 0.0;
  double allreduce_us = 0.0;
  double halo_us = 0.0;
};

/// Stores `value` on rank 0 / every non-shared rank — the standard
/// multi-backend publish pattern (minimpi.h): under fork mode the parent
/// process is rank 0, so the captured result lands in the caller.
void publish(mpi::Comm& comm, double& slot, double value) {
  if (comm.rank() == 0 || !mpi::ranks_share_address_space()) {
    slot = value;
  }
}

BackendResult measure_backend(const std::string& name, int ranks, int reps,
                              size_t stream_bytes) {
  ::setenv("NGSX_MPI_TRANSPORT", name.c_str(), 1);
  BackendResult r;
  r.backend = name;

  {
    WallTimer timer;
    mpi::run(ranks, [](mpi::Comm&) {});
    r.setup_s = timer.seconds();
  }

  // Ping-pong: 8-byte message bounced rank 0 <-> 1, reps round trips.
  mpi::run(2, [&](mpi::Comm& comm) {
    uint64_t token = 1;
    comm.barrier();
    WallTimer timer;
    for (int i = 0; i < reps; ++i) {
      if (comm.rank() == 0) {
        comm.send_value(1, 1, token);
        token = comm.recv_value<uint64_t>(1, 2);
      } else {
        token = comm.recv_value<uint64_t>(0, 1);
        comm.send_value(0, 2, token);
      }
    }
    publish(comm, r.pingpong_us, timer.seconds() / reps / 2.0 * 1e6);
  });

  // Bandwidth: rank 0 streams 1 MiB messages to rank 1, one trailing ack.
  mpi::run(2, [&](mpi::Comm& comm) {
    const size_t msg = 1 << 20;
    const size_t n_msgs = std::max<size_t>(stream_bytes / msg, 1);
    std::string payload(msg, 'x');
    comm.barrier();
    WallTimer timer;
    if (comm.rank() == 0) {
      for (size_t i = 0; i < n_msgs; ++i) {
        comm.send(1, 1, payload);
      }
      comm.recv(1, 2);  // ack: every byte has been consumed
    } else {
      for (size_t i = 0; i < n_msgs; ++i) {
        comm.recv(0, 1);
      }
      comm.send(0, 2, "ok");
    }
    publish(comm, r.bandwidth_mbps,
            static_cast<double>(n_msgs * msg) / timer.seconds() / 1e6);
  });

  // Collectives at the full rank count.
  mpi::run(ranks, [&](mpi::Comm& comm) {
    comm.barrier();
    WallTimer timer;
    for (int i = 0; i < reps; ++i) {
      comm.barrier();
    }
    publish(comm, r.barrier_us, timer.seconds() / reps * 1e6);

    comm.barrier();
    WallTimer timer2;
    int64_t acc = 0;
    for (int i = 0; i < reps; ++i) {
      acc += comm.allreduce_sum<int64_t>(comm.rank() + i);
    }
    publish(comm, r.allreduce_us, timer2.seconds() / reps * 1e6);
    if (acc < 0) {
      std::abort();  // keep the reduction observable
    }
  });

  // Halo step: the NL-means §IV exchange shape — every rank swaps 8 KiB
  // with each neighbour, then synchronizes.
  mpi::run(ranks, [&](mpi::Comm& comm) {
    const int rank = comm.rank();
    const int size = comm.size();
    std::vector<double> edge(1024, 1.5);
    comm.barrier();
    WallTimer timer;
    for (int i = 0; i < reps; ++i) {
      if (rank > 0) {
        comm.send_vector<double>(rank - 1, 1, edge);
      }
      if (rank < size - 1) {
        comm.send_vector<double>(rank + 1, 2, edge);
      }
      if (rank > 0) {
        comm.recv_vector<double>(rank - 1, 2);
      }
      if (rank < size - 1) {
        comm.recv_vector<double>(rank + 1, 1);
      }
      comm.barrier();
    }
    publish(comm, r.halo_us, timer.seconds() / reps * 1e6);
  });

  ::unsetenv("NGSX_MPI_TRANSPORT");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int ranks = static_cast<int>(args.get_int("ranks", 4));
  const int reps = static_cast<int>(args.get_int("reps", 500));
  const size_t stream_mb =
      static_cast<size_t>(args.get_int("mb", 64));
  const std::string json_path = args.get("json", "BENCH_transport.json");

  obs::enable_metrics();

  std::printf("=== minimpi transport comparison (%d ranks, %d reps) ===\n",
              ranks, reps);
  std::vector<BackendResult> results;
  for (const char* backend : {"threads", "shm", "tcp"}) {
    results.push_back(
        measure_backend(backend, ranks, reps, stream_mb << 20));
    const BackendResult& r = results.back();
    std::printf(
        "%-8s setup %6.1f ms | pingpong %7.2f us | %8.0f MB/s | "
        "barrier %7.2f us | allreduce %7.2f us | halo %7.2f us\n",
        r.backend.c_str(), r.setup_s * 1e3, r.pingpong_us, r.bandwidth_mbps,
        r.barrier_us, r.allreduce_us, r.halo_us);
  }

  const cluster::ClusterConfig paper = bench::paper_cluster();

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"ranks\": %d,\n", ranks);
  std::fprintf(f, "  \"reps\": %d,\n", reps);
  std::fprintf(f, "  \"backends\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BackendResult& r = results[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"setup_s\": %.6f, "
                 "\"pingpong_us\": %.3f, \"bandwidth_mbps\": %.1f, "
                 "\"barrier_us\": %.3f, \"allreduce_us\": %.3f, "
                 "\"halo_us\": %.3f}%s\n",
                 r.backend.c_str(), r.setup_s, r.pingpong_us,
                 r.bandwidth_mbps, r.barrier_us, r.allreduce_us, r.halo_us,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"simulated\": {\"collective_hop_us\": %.1f, "
               "\"rank_startup_s\": %.3f, \"nodes\": %d, "
               "\"cores_per_node\": %d},\n",
               paper.collective_hop * 1e6, paper.rank_startup, paper.nodes,
               paper.cores_per_node);
  std::fprintf(f, "  \"obs\": %s\n}\n", obs::metrics_json().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
