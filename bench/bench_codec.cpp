// Byte-level kernel benchmark: scalar baselines vs the dispatched
// SWAR/SIMD kernels on the paper's hot paths — SAM tokenization (tab/
// newline scan), 4-bit sequence codec, CRC32, and the raw-deflate
// backends behind BGZF.
//
// Emits BENCH_codec.json (path configurable with --json):
//
//   "features": what this machine dispatched to (simd level, crc32
//     implementation, seq-unpack kernel, available deflate backends).
//   "kernels": GB/s for each kernel, scalar vs dispatched, with the
//     speedup ratio. The scalar baselines are the *compiled* portable
//     fallbacks from util/simd.h and formats/seqcodec.h — the same code
//     an NGSX_SIMD=OFF build runs — so the ratio is exactly what the
//     vector pass bought on this machine.
//   "codecs": deflate/inflate GB/s per raw-deflate backend (zlib always;
//     libdeflate when its shared library loads).
//
// scripts/check_bench_codec.py enforces the CI floor: vectorized >=
// scalar on every kernel, and >= 2x on tokenization and seq unpack when
// a SIMD level is active.
//
// Usage: bench_codec [--mb N] [--json PATH] [--seconds S]

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "formats/bgzf.h"
#include "formats/bgzf_codec.h"
#include "formats/seqcodec.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/strutil.h"

using namespace ngsx;

namespace {

/// Synthetic SAM-shaped text: 12 tab-separated fields per line, field
/// widths drawn to match short-read records (QNAME ~20, SEQ/QUAL ~100).
std::string make_sam_text(size_t target_bytes, uint64_t seed) {
  Rng rng(seed);
  std::string text;
  text.reserve(target_bytes + 512);
  const char* bases = "ACGTN";
  while (text.size() < target_bytes) {
    text += "read_";
    strutil::append_uint(text, rng.below(1u << 20));
    text += "\t99\tchr1\t";
    strutil::append_uint(text, 1 + rng.below(1u << 27));
    text += "\t60\t100M\t=\t";
    strutil::append_uint(text, 1 + rng.below(1u << 27));
    text += "\t250\t";
    for (int i = 0; i < 100; ++i) {
      text += bases[rng.below(5)];
    }
    text += '\t';
    for (int i = 0; i < 100; ++i) {
      text += static_cast<char>('!' + rng.below(42));
    }
    text += "\tNM:i:0\tAS:i:100\n";
  }
  return text;
}

/// Tokenizes every line of `text` into fields using the given find
/// function — the common shape of the converter's read loop. Returns a
/// checksum so the work cannot be optimized away.
template <size_t (*FindByte)(const char*, size_t, char)>
size_t tokenize_all(std::string_view text,
                    std::vector<std::string_view>& fields) {
  size_t sink = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl =
        pos + FindByte(text.data() + pos, text.size() - pos, '\n');
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl == text.size() ? text.size() : nl + 1;
    fields.clear();
    size_t start = 0;
    while (true) {
      size_t tab = start +
          FindByte(line.data() + start, line.size() - start, '\t');
      if (tab == line.size()) {
        fields.push_back(line.substr(start));
        break;
      }
      fields.push_back(line.substr(start, tab - start));
      start = tab + 1;
    }
    sink += fields.size();
  }
  return sink;
}

/// Pre-PR scalar base encoder (the switch the 256-entry LUT replaced);
/// kept here as the honest pack baseline.
uint8_t base_to_nibble_switch(char base) {
  switch (base) {
    case '=': return 0;
    case 'A': case 'a': return 1;
    case 'C': case 'c': return 2;
    case 'M': case 'm': return 3;
    case 'G': case 'g': return 4;
    case 'R': case 'r': return 5;
    case 'S': case 's': return 6;
    case 'V': case 'v': return 7;
    case 'T': case 't': return 8;
    case 'W': case 'w': return 9;
    case 'Y': case 'y': return 10;
    case 'H': case 'h': return 11;
    case 'K': case 'k': return 12;
    case 'D': case 'd': return 13;
    case 'B': case 'b': return 14;
    default: return 15;
  }
}

void pack_seq_switch(std::string_view seq, char* dst) {
  size_t full = seq.size() / 2;
  for (size_t i = 0; i < full; ++i) {
    dst[i] = static_cast<char>((base_to_nibble_switch(seq[2 * i]) << 4) |
                               base_to_nibble_switch(seq[2 * i + 1]));
  }
  if (seq.size() % 2 == 1) {
    dst[full] = static_cast<char>(base_to_nibble_switch(seq.back()) << 4);
  }
}

struct KernelRow {
  const char* name;
  double scalar_gbps;
  double simd_gbps;
  const char* kernel;  // what the dispatched side ran
};

struct CodecRow {
  const char* backend;
  double deflate_gbps;
  double inflate_gbps;
  double ratio;  // compressed / uncompressed
};

volatile size_t g_sink;  // defeats dead-code elimination across kernels

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const size_t mb = static_cast<size_t>(args.get_int("mb", 8));
  const std::string json_path = args.get("json", "BENCH_codec.json");
  const double seconds = args.get_double("seconds", 0.3);

  std::printf("=== byte-level kernels: scalar vs dispatched ===\n");
  std::printf("simd level: %s, crc32: %s, seq unpack: %s\n",
              simd::level_name(simd::active_level()),
              simd::crc32_impl_name(),
              seqcodec::detail::unpack_kernel_name());

  std::vector<KernelRow> kernels;
  auto add = [&](const char* name, double scalar, double fast,
                 const char* kernel) {
    kernels.push_back(KernelRow{name, scalar, fast, kernel});
    std::printf("  %-14s scalar %7.2f GB/s   %-6s %7.2f GB/s   %5.2fx\n",
                name, scalar, kernel, fast, fast / scalar);
  };

  // ------------------------------------------------------- tokenization
  {
    std::string text = make_sam_text(mb << 20, 1);
    std::vector<std::string_view> fields;
    double scalar = bench::measure_gbps(text.size(), [&] {
      g_sink = tokenize_all<&simd::find_byte_scalar>(text, fields);
    }, seconds);
    double fast = bench::measure_gbps(text.size(), [&] {
      g_sink = tokenize_all<&simd::find_byte>(text, fields);
    }, seconds);
    add("sam_tokenize", scalar, fast,
        simd::level_name(simd::active_level()));
  }

  // ------------------------------------------------------- newline scan
  {
    std::string text = make_sam_text(mb << 20, 2);
    double scalar = bench::measure_gbps(text.size(), [&] {
      size_t sink = 0;
      size_t pos = 0;
      while (pos < text.size()) {
        pos += simd::find_byte_scalar(text.data() + pos,
                                      text.size() - pos, '\n') + 1;
        ++sink;
      }
      g_sink = sink;
    }, seconds);
    double fast = bench::measure_gbps(text.size(), [&] {
      size_t sink = 0;
      size_t pos = 0;
      while (pos < text.size()) {
        pos += simd::find_byte(text.data() + pos, text.size() - pos, '\n') +
               1;
        ++sink;
      }
      g_sink = sink;
    }, seconds);
    add("newline_scan", scalar, fast,
        simd::level_name(simd::active_level()));
  }

  // --------------------------------------------------------- seq unpack
  {
    const size_t l_seq = (mb << 20);  // bases
    Rng rng(3);
    std::string packed((l_seq + 1) / 2, '\0');
    for (char& c : packed) {
      c = static_cast<char>(rng.below(256));
    }
    std::string out;
    double scalar = bench::measure_gbps(l_seq, [&] {
      seqcodec::unpack_seq_scalar(packed.data(), l_seq, out);
      g_sink = out.size();
    }, seconds);
    double fast = bench::measure_gbps(l_seq, [&] {
      seqcodec::unpack_seq(packed.data(), l_seq, out);
      g_sink = out.size();
    }, seconds);
    add("seq_unpack", scalar, fast, seqcodec::detail::unpack_kernel_name());
  }

  // ----------------------------------------------------------- seq pack
  {
    const size_t l_seq = (mb << 20);
    Rng rng(4);
    std::string seq(l_seq, '\0');
    for (char& c : seq) {
      c = seqcodec::kNibbles[rng.below(16)];
    }
    std::string packed((l_seq + 1) / 2, '\0');
    double scalar = bench::measure_gbps(l_seq, [&] {
      pack_seq_switch(seq, packed.data());
      g_sink = static_cast<size_t>(packed[0]);
    }, seconds);
    double fast = bench::measure_gbps(l_seq, [&] {
      seqcodec::pack_seq_into(seq, packed.data());
      g_sink = static_cast<size_t>(packed[0]);
    }, seconds);
    add("seq_pack", scalar, fast, "pair-lut");
  }

  // -------------------------------------------------------------- crc32
  {
    Rng rng(5);
    std::string buf(mb << 20, '\0');
    for (char& c : buf) {
      c = static_cast<char>(rng.below(256));
    }
    double scalar = bench::measure_gbps(buf.size(), [&] {
      g_sink = simd::crc32_ieee_scalar(0, buf.data(), buf.size());
    }, seconds);
    double fast = bench::measure_gbps(buf.size(), [&] {
      g_sink = simd::crc32_ieee(0, buf.data(), buf.size());
    }, seconds);
    add("crc32", scalar, fast, simd::crc32_impl_name());
  }

  // ------------------------------------------------------------- codecs
  // Whole-buffer raw deflate through the backend seam, at BGZF block
  // granularity (kMaxBlockInput) like the real writers.
  std::vector<CodecRow> codecs;
  {
    Rng rng(6);
    std::string payload(4u << 20, '\0');
    for (char& c : payload) {
      c = "ACGTNacgt()0123456789IIIIJJJJHHHH"[rng.below(32)];
    }
    for (bgzf::Backend backend :
         {bgzf::Backend::kZlib, bgzf::Backend::kLibdeflate}) {
      if (!bgzf::backend_available(backend)) {
        continue;
      }
      auto codec = bgzf::make_codec(backend);
      std::vector<std::string> bodies;
      std::string body;
      size_t compressed_bytes = 0;
      for (size_t pos = 0; pos < payload.size();
           pos += bgzf::kMaxBlockInput) {
        std::string_view chunk =
            std::string_view(payload).substr(pos, bgzf::kMaxBlockInput);
        codec->deflate_raw(chunk, body, 6);
        compressed_bytes += body.size();
        bodies.push_back(body);
      }
      double deflate_gbps = bench::measure_gbps(payload.size(), [&] {
        for (size_t pos = 0; pos < payload.size();
             pos += bgzf::kMaxBlockInput) {
          codec->deflate_raw(
              std::string_view(payload).substr(pos, bgzf::kMaxBlockInput),
              body, 6);
        }
        g_sink = body.size();
      }, seconds);
      std::string out(bgzf::kMaxBlockInput, '\0');
      double inflate_gbps = bench::measure_gbps(payload.size(), [&] {
        size_t pos = 0;
        for (const std::string& b : bodies) {
          size_t want = std::min<size_t>(bgzf::kMaxBlockInput,
                                         payload.size() - pos);
          if (!codec->inflate_raw(b, out.data(), want)) {
            std::fprintf(stderr, "FATAL: inflate failed\n");
            std::exit(1);
          }
          pos += want;
        }
        g_sink = static_cast<size_t>(out[0]);
      }, seconds);
      double ratio =
          static_cast<double>(compressed_bytes) / payload.size();
      codecs.push_back(CodecRow{codec->name(), deflate_gbps, inflate_gbps,
                                ratio});
      std::printf("  codec %-10s deflate %6.3f GB/s  inflate %6.3f GB/s  "
                  "(ratio %.3f)\n",
                  codec->name(), deflate_gbps, inflate_gbps, ratio);
    }
  }

  // ----------------------------------------------------------------- JSON
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"features\": {\n");
  std::fprintf(f, "    \"simd_level\": \"%s\",\n",
               simd::level_name(simd::active_level()));
  std::fprintf(f, "    \"crc32_impl\": \"%s\",\n", simd::crc32_impl_name());
  std::fprintf(f, "    \"unpack_kernel\": \"%s\",\n",
               seqcodec::detail::unpack_kernel_name());
  std::fprintf(f, "    \"libdeflate_available\": %s\n",
               bgzf::backend_available(bgzf::Backend::kLibdeflate)
                   ? "true"
                   : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"kernels\": [\n");
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelRow& k = kernels[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"scalar_gbps\": %.3f, "
                 "\"simd_gbps\": %.3f, \"speedup\": %.2f, "
                 "\"kernel\": \"%s\"}%s\n",
                 k.name, k.scalar_gbps, k.simd_gbps,
                 k.simd_gbps / k.scalar_gbps, k.kernel,
                 i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"codecs\": [\n");
  for (size_t i = 0; i < codecs.size(); ++i) {
    const CodecRow& c = codecs[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"deflate_gbps\": %.3f, "
                 "\"inflate_gbps\": %.3f, \"compression_ratio\": %.3f}%s\n",
                 c.backend, c.deflate_gbps, c.inflate_gbps, c.ratio,
                 i + 1 < codecs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
