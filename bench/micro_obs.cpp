// Micro-benchmarks backing the observability overhead contract
// (docs/OBSERVABILITY.md): the disarmed cost of every hook is one relaxed
// atomic load, so instrumented hot loops must run at the same speed as
// uninstrumented ones. The *_Baseline / *_Disarmed pairs measure exactly
// that — the contract holds when their times are within noise (<2%). The
// *_Armed variants quantify what turning metrics or tracing on costs.

#include <benchmark/benchmark.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace ngsx;

/// The stand-in "real work" a hook wraps: cheap enough that any hook
/// overhead shows up, real enough that the loop cannot be deleted.
inline uint64_t work_step(uint64_t x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

constexpr int kStepsPerIteration = 1024;

void BM_HotLoop_Baseline(benchmark::State& state) {
  obs::enable_metrics(false);
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    for (int i = 0; i < kStepsPerIteration; ++i) {
      x = work_step(x);
    }
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kStepsPerIteration);
}
BENCHMARK(BM_HotLoop_Baseline);

void BM_HotLoop_DisarmedCounter(benchmark::State& state) {
  obs::enable_metrics(false);
  obs::Counter& c = obs::counter("bench.micro.counter");
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    for (int i = 0; i < kStepsPerIteration; ++i) {
      x = work_step(x);
      if (obs::metrics_enabled()) {
        c.add(1);
      }
    }
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kStepsPerIteration);
}
BENCHMARK(BM_HotLoop_DisarmedCounter);

void BM_HotLoop_ArmedCounter(benchmark::State& state) {
  obs::enable_metrics();
  obs::Counter& c = obs::counter("bench.micro.counter");
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    for (int i = 0; i < kStepsPerIteration; ++i) {
      x = work_step(x);
      if (obs::metrics_enabled()) {
        c.add(1);
      }
    }
    benchmark::DoNotOptimize(x);
  }
  obs::enable_metrics(false);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kStepsPerIteration);
}
BENCHMARK(BM_HotLoop_ArmedCounter);

void BM_HotLoop_DisarmedHistogram(benchmark::State& state) {
  obs::enable_metrics(false);
  obs::Histogram& h = obs::histogram("bench.micro.hist");
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    for (int i = 0; i < kStepsPerIteration; ++i) {
      x = work_step(x);
      if (obs::metrics_enabled()) {
        h.record(x & 0xffff);
      }
    }
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kStepsPerIteration);
}
BENCHMARK(BM_HotLoop_DisarmedHistogram);

void BM_HotLoop_ArmedHistogram(benchmark::State& state) {
  obs::enable_metrics();
  obs::Histogram& h = obs::histogram("bench.micro.hist");
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    for (int i = 0; i < kStepsPerIteration; ++i) {
      x = work_step(x);
      if (obs::metrics_enabled()) {
        h.record(x & 0xffff);
      }
    }
    benchmark::DoNotOptimize(x);
  }
  obs::enable_metrics(false);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kStepsPerIteration);
}
BENCHMARK(BM_HotLoop_ArmedHistogram);

void BM_Span_Disarmed(benchmark::State& state) {
  obs::enable_tracing(false);
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    obs::Span span("bench", "disarmed");
    x = work_step(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Span_Disarmed);

void BM_Span_Armed(benchmark::State& state) {
  obs::reset_tracing();
  obs::enable_tracing();
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    obs::Span span("bench", "armed");
    x = work_step(x);
    benchmark::DoNotOptimize(x);
    // Spans buffer until drained; keep the per-thread buffer from
    // saturating (dropped events would make late iterations cheaper).
    if (obs::trace_event_count() > (obs::detail::kMaxEventsPerThread / 2)) {
      state.PauseTiming();
      obs::reset_tracing();
      obs::enable_tracing();
      state.ResumeTiming();
    }
  }
  obs::enable_tracing(false);
  obs::reset_tracing();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Span_Armed);

void BM_Snapshot(benchmark::State& state) {
  obs::enable_metrics();
  obs::counter("bench.micro.counter").add(1);
  obs::histogram("bench.micro.hist").record(1);
  for (auto _ : state) {
    obs::Snapshot snap = obs::snapshot();
    benchmark::DoNotOptimize(snap);
  }
  obs::enable_metrics(false);
}
BENCHMARK(BM_Snapshot);

}  // namespace

BENCHMARK_MAIN();
