// Figure 6 reproduction: conversion speedup of the SAM format converter.
//
// Paper (§V-B): a 100 GB SAM dataset converted into BED, BEDGRAPH and
// FASTA on 1..128 cores. Reported shape: good scaling for all three via
// Algorithm 1's balanced partitions; BEDGRAPH scales slightly best because
// its records carry the least text, making it the least I/O-intensive as
// core counts grow and the I/O bottleneck starts to dominate.
//
// Method: run the real SAM converter on a synthetic sample to (a) verify
// output correctness and (b) measure per-record parse+format CPU and
// per-record output bytes, then replay a 100 GB-scale job through the
// cluster simulator at the paper's core counts.

#include <cstdio>

#include "bench_util.h"
#include "cluster/costmodel.h"
#include "util/cli.h"

using namespace ngsx;
using cluster::ConversionJob;
using cluster::IoPattern;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const uint64_t pairs = static_cast<uint64_t>(args.get_int("pairs", 15000));

  bench::print_header("Figure 6: SAM format converter conversion speedup");
  auto costs = cluster::calibrate_conversion(pairs, /*seed=*/6);
  cluster::ClusterSim sim(bench::paper_cluster());

  const uint64_t records = static_cast<uint64_t>(
      bench::kFig6SamBytes / costs.sam_bytes_per_record);
  const double cpu_factor = bench::opteron_cpu_factor(
      costs,
      costs.sam_parse + costs.format_cpu.at(core::TargetFormat::kFastq));
  std::printf("scaled dataset: 100 GB SAM = %.1fM records "
              "(%.0f B/record measured); platform CPU factor %.1fx\n",
              records / 1e6, costs.sam_bytes_per_record, cpu_factor);

  const std::vector<int> cores = {1, 2, 4, 8, 16, 32, 64, 128};
  for (auto format : {core::TargetFormat::kBed, core::TargetFormat::kBedgraph,
                      core::TargetFormat::kFasta}) {
    ConversionJob job;
    job.records = records;
    job.input_bytes = bench::kFig6SamBytes;
    job.cpu_per_record =
        cpu_factor * (costs.sam_parse + costs.format_cpu.at(format));
    job.out_bytes_per_record = costs.out_bytes_per_record.at(format);
    job.read_pattern = IoPattern::kIrregular;  // variable-length text rows
    auto series = cluster::speedup_series(sim, cores, [&](int p) {
      return cluster::conversion_work(job, p);
    });
    bench::print_series("SAM -> " +
                            std::string(core::target_format_name(format)),
                        series);
  }

  std::printf(
      "\npaper shape: all three scale well to 128 cores; BEDGRAPH best\n"
      "(least output I/O: measured %.0f B/rec vs BED %.0f, FASTA %.0f)\n",
      costs.out_bytes_per_record.at(core::TargetFormat::kBedgraph),
      costs.out_bytes_per_record.at(core::TargetFormat::kBed),
      costs.out_bytes_per_record.at(core::TargetFormat::kFasta));
  return 0;
}
