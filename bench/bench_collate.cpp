// Read-pair collation benchmark (docs/COLLATION.md): streaming FASTQ
// export, name-grouped BAM, and two-pass duplicate marking over a
// simulated coordinate-sorted BAM, each in an in-memory and a forced-spill
// configuration.
//
// The interesting contrast is the in-memory hash path vs the external
// name sort: on coordinate-sorted input the pending-mate bucket stays
// near the insert-size occupancy, so streaming collation should run at
// roughly BAM decode speed, while the forced-spill configuration pays one
// extra compress/decompress cycle per record. The dup-marking rows cost
// two input passes by construction.
//
// Emits BENCH_collate.json (path configurable with --json). With
// --floor N, exits non-zero unless the in-memory FASTQ-export row
// sustains at least N records/s — the CI regression gate.
//
// Usage: bench_collate [--pairs N] [--repeats R] [--json PATH] [--floor N]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/collate.h"
#include "obs/metrics.h"
#include "simdata/readsim.h"
#include "util/cli.h"
#include "util/tempdir.h"

using namespace ngsx;

namespace {

struct Row {
  std::string program;
  std::string config;
  double seconds = 0.0;
  double records_per_s = 0.0;
  uint64_t spill_runs = 0;
};

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const uint64_t pairs = static_cast<uint64_t>(args.get_int("pairs", 50000));
  const int repeats = static_cast<int>(args.get_int("repeats", 3));
  const std::string json_path = args.get("json", "BENCH_collate.json");
  const double floor = static_cast<double>(args.get_int("floor", 0));

  obs::enable_metrics();

  TempDir tmp("bench_collate");
  const std::string bam_path = tmp.file("input.bam");
  std::printf("=== read-pair collation: streaming vs forced spill ===\n");
  uint64_t records;
  {
    auto genome = simdata::ReferenceGenome::simulate(
        simdata::mouse_like_references(2'000'000), 7);
    simdata::ReadSimConfig cfg;
    cfg.seed = 7;
    records = simdata::write_bam_dataset(bam_path, genome, pairs, cfg);
  }
  std::printf("dataset: %llu records, %.1f MB BAM\n",
              static_cast<unsigned long long>(records),
              file_size(bam_path) / 1e6);

  core::CollateOptions in_memory;
  in_memory.temp_dir = tmp.path();
  core::CollateOptions spilling = in_memory;
  // Force heavy spilling: ~20 runs over the dataset.
  spilling.max_records_in_memory = std::max<size_t>(64, records / 20);

  std::vector<Row> rows;
  auto run = [&](const std::string& program, const std::string& config,
                 auto&& fn) {
    Row row{program, config};
    row.seconds = 1e300;
    for (int r = 0; r < repeats; ++r) {
      core::CollateStats stats = fn();
      row.seconds = std::min(row.seconds, stats.seconds);
      row.spill_runs = stats.spill_runs;
    }
    row.records_per_s = static_cast<double>(records) / row.seconds;
    rows.push_back(row);
    std::printf("  %-16s %-10s %8.3f s  %12.0f records/s  %llu runs\n",
                program.c_str(), config.c_str(), row.seconds,
                row.records_per_s,
                static_cast<unsigned long long>(row.spill_runs));
    return row;
  };

  const Row gate =
      run("fastq_export", "in-memory", [&] {
        return core::collate_to_fastq(bam_path, tmp.file("fq_mem"),
                                      in_memory);
      });
  run("fastq_export", "spilling", [&] {
    return core::collate_to_fastq(bam_path, tmp.file("fq_ext"), spilling);
  });
  run("name_group_bam", "in-memory", [&] {
    return core::collate_to_bam(bam_path, tmp.file("grouped_mem.bam"),
                                in_memory);
  });
  run("name_group_bam", "spilling", [&] {
    return core::collate_to_bam(bam_path, tmp.file("grouped_ext.bam"),
                                spilling);
  });
  run("mark_duplicates", "in-memory", [&] {
    return core::mark_duplicates(bam_path, tmp.file("markdup_mem.bam"),
                                 core::DuplicateMode::kMark, in_memory);
  });
  run("mark_duplicates", "spilling", [&] {
    return core::mark_duplicates(bam_path, tmp.file("markdup_ext.bam"),
                                 core::DuplicateMode::kMark, spilling);
  });

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"records\": %llu,\n",
               static_cast<unsigned long long>(records));
  std::fprintf(f, "  \"bam_mb\": %.2f,\n", file_size(bam_path) / 1e6);
  std::fprintf(f, "  \"spill_budget\": %llu,\n",
               static_cast<unsigned long long>(
                   spilling.max_records_in_memory));
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"program\": \"%s\", \"config\": \"%s\", "
                 "\"seconds\": %.4f, \"records_per_s\": %.0f, "
                 "\"spill_runs\": %llu}%s\n",
                 r.program.c_str(), r.config.c_str(), r.seconds,
                 r.records_per_s,
                 static_cast<unsigned long long>(r.spill_runs),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // collate.* counters and stage spans for every run above.
  std::fprintf(f, "  \"obs\": %s\n}\n", obs::metrics_json().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  if (floor > 0 && gate.records_per_s < floor) {
    std::fprintf(stderr,
                 "FAIL: in-memory fastq_export %.0f records/s is below the "
                 "--floor %.0f\n",
                 gate.records_per_s, floor);
    return 1;
  }
  return 0;
}
