// Figure 10 reproduction: speedup of the (parallelized) SAM preprocessing
// step of the preprocessing-optimized SAM format converter.
//
// Paper (§V-F): the same 15.7 GB SAM dataset; sequential preprocessing
// takes 2187 s. Reported shape: scalability *within a single node* is
// bridled by the I/O bottleneck, but performance scales well as more nodes
// join, demonstrating that Algorithm 1 parallelizes the preprocessing
// effectively in distributed environments.
//
// Method: real parallel preprocessing runs validate Algorithm 1 behaviour;
// measured parse+encode costs replay at 15.7 GB scale. The within-node
// I/O ceiling emerges from block placement sharing one node's I/O path.

#include <cstdio>

#include "bench_util.h"
#include "cluster/costmodel.h"
#include "core/convert.h"
#include "formats/bam.h"
#include "simdata/readsim.h"
#include "util/cli.h"
#include "util/tempdir.h"

using namespace ngsx;
using cluster::IoPattern;
using cluster::Phase;
using cluster::RankWork;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const uint64_t pairs = static_cast<uint64_t>(args.get_int("pairs", 15000));

  bench::print_header("Figure 10: SAM preprocessing speedup");

  // Functional check: parallel preprocessing reproduces identical shards.
  {
    TempDir tmp("fig10");
    auto genome = simdata::ReferenceGenome::simulate(
        simdata::mouse_like_references(1'000'000), 10);
    simdata::ReadSimConfig rcfg;
    rcfg.seed = 10;
    const std::string sam_path = tmp.file("in.sam");
    simdata::write_sam_dataset(sam_path, genome, 4000, rcfg);
    auto one = core::preprocess_sam_parallel(sam_path, tmp.subdir("m1"), 1);
    auto four = core::preprocess_sam_parallel(sam_path, tmp.subdir("m4"), 4);
    std::printf("functional check: %llu records preprocessed, "
                "M=1 and M=4 record totals %s\n",
                static_cast<unsigned long long>(one.records),
                one.records == four.records ? "agree" : "DISAGREE");

    // Same property for the BAM side: the single-pass parallel
    // preprocessor's shard manifest must convert to the same record total
    // as the sequential two-pass BAMX.
    const std::string bam_path = tmp.file("in.bam");
    {
      simdata::ReadSimConfig bcfg;
      bcfg.seed = 11;
      auto records = simdata::simulate_alignments(genome, 4000, bcfg);
      bam::BamFileWriter w(bam_path, genome.header());
      for (const auto& r : records) {
        w.write(r);
      }
      w.close();
    }
    auto seq = core::preprocess_bam(bam_path, tmp.file("seq.bamx"),
                                    tmp.file("seq.baix"));
    core::PreprocessOptions popt;
    popt.threads = 4;
    auto par = core::preprocess_bam_parallel(bam_path, tmp.file("par.bamxm"),
                                             tmp.file("par.baix"), popt);
    std::printf("functional check: BAM two-pass and one-pass record totals "
                "%s (%llu records), BAIX files %s\n",
                seq.records == par.records ? "agree" : "DISAGREE",
                static_cast<unsigned long long>(par.records),
                read_file(tmp.file("seq.baix")) ==
                        read_file(tmp.file("par.baix"))
                    ? "identical"
                    : "DIFFER");
  }

  auto costs = cluster::calibrate_conversion(pairs, /*seed=*/10);
  cluster::ClusterSim sim(bench::paper_cluster());
  const uint64_t records = static_cast<uint64_t>(
      bench::kFig9SamBytes / costs.sam_bytes_per_record);
  const double cpu_factor = bench::opteron_cpu_factor(
      costs,
      costs.sam_parse + costs.format_cpu.at(core::TargetFormat::kFastq));
  // Preprocessing = parse SAM text + encode BAMX + write BAMX/BAIX.
  const double cpu_per_record =
      cpu_factor * (costs.sam_parse + costs.bamx_encode);
  const double out_bytes_per_record = costs.bamx_bytes_per_record + 16.0;

  auto make_work = [&](int p) {
    std::vector<RankWork> work(static_cast<size_t>(p));
    double recs = static_cast<double>(records) / p;
    for (auto& w : work) {
      w.phases = {
          Phase::read(bench::kFig9SamBytes / p, IoPattern::kIrregular),
          Phase::compute(recs * cpu_per_record),
          Phase::write(recs * out_bytes_per_record, IoPattern::kRegular),
      };
    }
    return work;
  };

  auto series = cluster::speedup_series(
      sim, {1, 2, 4, 8, 16, 32, 64, 128}, make_work);
  bench::print_series("SAM -> BAMX preprocessing", series);
  std::printf("sequential replay %.0f s (paper: 2187 s on the same anchor"
              " hardware)\n", series[0].seconds);

  std::printf("\npaper shape: sequential 2187 s; limited scaling within one\n"
              "node (<=8 cores share its I/O path), good scaling beyond as\n"
              "nodes add I/O bandwidth. Within-node ceiling here: speedup at\n"
              "8 cores %.1fx vs 16 cores %.1fx.\n",
              series[3].speedup, series[4].speedup);
  return 0;
}
