// Resident serving benchmark: cold one-shot region conversion (open the
// source + load the index per request, what each `ngsx_convert --region`
// invocation pays) vs the warm resident path (one ConversionSession held
// open by ngsx_serve, shared scheduler, hot blocks in the LRU cache).
//
// The paper removes sequential bottlenecks *within* one conversion; a
// region-query workload (genome browser, pileup service) adds an
// orthogonal one — per-request setup. For a small region the index load
// dominates end-to-end latency, so the resident session should win by a
// wide margin (the acceptance bar is >= 5x).
//
// Emits BENCH_serve.json (path configurable with --json):
//
//   "cold_us":  mean per-request microseconds, fresh session per request
//   "warm_us":  mean per-request microseconds through Server::handle_line
//               (protocol parse + scheduler + block cache included)
//   "speedup":  cold_us / warm_us
//
// Usage: bench_serve [--pairs N] [--cold-requests N] [--warm-requests N]
//                    [--window BP] [--json PATH]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/convert.h"
#include "core/session.h"
#include "exec/pool.h"
#include "formats/bam.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "simdata/readsim.h"
#include "util/cli.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace ngsx;

namespace {

/// Deterministic region sequence over the first reference (no
/// std::mt19937 so the request stream is identical across runs).
std::string region_text(const sam::SamHeader& header, uint64_t i,
                        int64_t window) {
  const sam::Reference& ref = header.references()[0];
  const int64_t span = std::max<int64_t>(1, ref.length - window);
  const int64_t begin = 1 + static_cast<int64_t>((i * 2654435761u) % span);
  return ref.name + ":" + std::to_string(begin) + "-" +
         std::to_string(begin + window);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const uint64_t pairs = static_cast<uint64_t>(args.get_int("pairs", 20000));
  const int cold_requests = static_cast<int>(args.get_int("cold-requests", 40));
  const int warm_requests =
      static_cast<int>(args.get_int("warm-requests", 400));
  // Browser-viewport-sized regions: the regime where per-request setup
  // (not record formatting) dominates cold latency.
  const int64_t window = args.get_int("window", 3000);
  const std::string json_path = args.get("json", "BENCH_serve.json");

  obs::enable_metrics();

  std::printf("=== region serving: cold one-shot vs warm resident ===\n");
  TempDir tmp("bench_serve");
  const std::string bam_path = tmp.file("input.bam");
  auto genome = simdata::ReferenceGenome::simulate(
      simdata::mouse_like_references(2'000'000), 7);
  std::vector<sam::AlignmentRecord> records;
  {
    simdata::ReadSimConfig cfg;
    cfg.seed = 7;
    records = simdata::simulate_alignments(genome, pairs, cfg);
    bam::BamFileWriter w(bam_path, genome.header());
    for (const auto& r : records) {
      w.write(r);
    }
    w.close();
  }
  const std::string bamx_path = tmp.file("input.bamx");
  const std::string baix_path = tmp.file("input.baix");
  core::preprocess_bam(bam_path, bamx_path, baix_path);
  std::printf("dataset: %llu records, %.1f MB BAMX\n",
              static_cast<unsigned long long>(records.size()),
              file_size(bamx_path) / 1e6);

  core::SessionOptions sopt;
  sopt.bamx_path = bamx_path;
  sopt.baix_path = baix_path;

  // ------------------------------------------------------------------ cold
  // What every one-shot invocation pays: open the BAMX, load the BAIX,
  // plan, fetch, format — then throw it all away. (A real ngsx_convert
  // additionally pays process spawn, so this is a conservative floor.)
  uint64_t planned_records = 0;
  double cold_total_s = 0.0;
  for (int i = 0; i < cold_requests; ++i) {
    WallTimer timer;
    core::ConversionSession session(sopt);
    const core::Region region = session.parse(
        region_text(session.header(), static_cast<uint64_t>(i), window));
    const std::vector<uint64_t> plan =
        session.plan(region, baix2::RegionMode::kStartWithin);
    std::string payload;
    session.format_records(plan, core::TargetFormat::kSam,
                           /*include_header=*/true, payload);
    cold_total_s += timer.seconds();
    planned_records += plan.size();
  }
  const double cold_us = cold_total_s / cold_requests * 1e6;
  std::printf("cold one-shot: %d requests, %.0f us/request "
              "(%.1f records/request)\n",
              cold_requests, cold_us,
              static_cast<double>(planned_records) / cold_requests);

  // ------------------------------------------------------------------ warm
  // The resident path, end to end: protocol parse, scheduler admission,
  // consumer execution on the shared pool, block cache. One untimed
  // request warms the index and the cache the way a long-lived daemon is
  // warm in steady state.
  core::ConversionSession session(sopt);
  exec::Pool pool(2);
  serve::ServerOptions options;
  options.cache_bytes = 64ull << 20;
  serve::Server server(session, pool, options);
  {
    const std::string response = server.handle_line(
        "CONVERT " + region_text(session.header(), 0, window) + " sam");
    if (response.rfind("OK ", 0) != 0) {
      std::fprintf(stderr, "FATAL: warmup failed: %s", response.c_str());
      return 1;
    }
  }
  double warm_total_s = 0.0;
  {
    WallTimer timer;
    for (int i = 0; i < warm_requests; ++i) {
      const std::string response = server.handle_line(
          "CONVERT " +
          region_text(session.header(), static_cast<uint64_t>(i), window) +
          " sam");
      if (response.rfind("OK ", 0) != 0) {
        std::fprintf(stderr, "FATAL: request %d failed: %s", i,
                     response.c_str());
        return 1;
      }
    }
    warm_total_s = timer.seconds();
  }
  const double warm_us = warm_total_s / warm_requests * 1e6;
  const double speedup = cold_us / warm_us;
  std::printf("warm resident: %d requests, %.0f us/request\n", warm_requests,
              warm_us);
  std::printf("resident speedup: %.1fx (acceptance bar: >= 5x)\n", speedup);

  // ----------------------------------------------------------------- JSON
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"records\": %llu,\n",
               static_cast<unsigned long long>(records.size()));
  std::fprintf(f, "  \"window_bp\": %lld,\n",
               static_cast<long long>(window));
  std::fprintf(f, "  \"cold_requests\": %d,\n", cold_requests);
  std::fprintf(f, "  \"warm_requests\": %d,\n", warm_requests);
  std::fprintf(f, "  \"cold_us\": %.1f,\n", cold_us);
  std::fprintf(f, "  \"warm_us\": %.1f,\n", warm_us);
  std::fprintf(f, "  \"speedup\": %.2f,\n", speedup);
  // serve.requests / serve.cache.{hits,misses} / serve.request_us for the
  // warm run live in the embedded snapshot (docs/OBSERVABILITY.md).
  std::fprintf(f, "  \"obs\": %s\n}\n", obs::metrics_json().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
