// Micro-benchmarks for the minimpi runtime: point-to-point latency and
// bandwidth, barrier and collective costs vs rank count. These are the
// communication constants behind the cluster model's collective_hop
// parameter.

#include <benchmark/benchmark.h>

#include "mpi/minimpi.h"

namespace {

using namespace ngsx;

void BM_PingPong(benchmark::State& state) {
  const size_t payload_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    mpi::run(2, [&](mpi::Comm& comm) {
      std::string payload(payload_size, 'x');
      const int rounds = 50;
      for (int i = 0; i < rounds; ++i) {
        if (comm.rank() == 0) {
          comm.send(1, 0, payload);
          benchmark::DoNotOptimize(comm.recv(1, 1));
        } else {
          benchmark::DoNotOptimize(comm.recv(0, 0));
          comm.send(0, 1, payload);
        }
      }
    });
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 100 *
                          static_cast<int64_t>(payload_size));
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(65536)->Arg(1 << 20);

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::run(ranks, [](mpi::Comm& comm) {
      for (int i = 0; i < 100; ++i) {
        comm.barrier();
      }
    });
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8)->Arg(32);

void BM_AllreduceSum(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::run(ranks, [](mpi::Comm& comm) {
      double acc = comm.rank();
      for (int i = 0; i < 50; ++i) {
        acc = comm.allreduce_sum(acc * 0.5);
      }
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 50);
}
BENCHMARK(BM_AllreduceSum)->Arg(2)->Arg(8)->Arg(32);

void BM_GatherPayload(benchmark::State& state) {
  const int ranks = 8;
  const size_t payload_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    mpi::run(ranks, [&](mpi::Comm& comm) {
      std::string local(payload_size, static_cast<char>('a' + comm.rank()));
      for (int i = 0; i < 20; ++i) {
        auto parts = comm.gather(0, local);
        benchmark::DoNotOptimize(parts);
        comm.barrier();
      }
    });
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 20 *
                          ranks * static_cast<int64_t>(payload_size));
}
BENCHMARK(BM_GatherPayload)->Arg(64)->Arg(65536);

void BM_WorldSpawn(benchmark::State& state) {
  // Fixed cost of run(): thread spawn + join for N ranks.
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::run(ranks, [](mpi::Comm&) {});
  }
}
BENCHMARK(BM_WorldSpawn)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
