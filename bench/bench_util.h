// bench/bench_util.h
//
// Shared plumbing for the figure/table reproduction harnesses: table
// printing, the paper's cluster configuration, and dataset-scale constants.
//
// Every harness follows the same recipe: (1) generate synthetic data and
// run the *real* ngsx code on it, both to verify functional behaviour and
// to calibrate per-record costs; (2) replay those costs through the
// discrete-event cluster simulator at the paper's dataset/core scales;
// (3) print the measured series next to the paper's reported shape so
// EXPERIMENTS.md can record paper-vs-measured.

#pragma once

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/clustersim.h"
#include "cluster/costmodel.h"
#include "util/timer.h"

namespace ngsx::bench {

/// Throughput of a kernel in GB/s: calls `fn` (which must process
/// `bytes_per_iter` bytes per call) in `batches` timed batches of at
/// least `min_seconds / batches` wall time each, after one warm-up call,
/// and returns the best batch rate. Best-of-batches filters scheduler
/// noise on shared machines; bench_codec uses this for every
/// scalar-vs-vectorized pair so both sides see identical harness
/// overhead.
template <typename Fn>
inline double measure_gbps(size_t bytes_per_iter, Fn&& fn,
                           double min_seconds = 0.3, int batches = 3) {
  fn();  // warm-up: page in buffers, settle dispatch statics
  double best = 0.0;
  for (int b = 0; b < batches; ++b) {
    WallTimer timer;
    size_t iters = 0;
    double elapsed;
    do {
      fn();
      ++iters;
      elapsed = timer.seconds();
    } while (elapsed < min_seconds / batches);
    best = std::max(best, static_cast<double>(bytes_per_iter) *
                              static_cast<double>(iters) / elapsed / 1e9);
  }
  return best;
}

/// The paper's platform (§V): 32 nodes x 8 cores of AMD Opteron 8218.
/// I/O parameters approximate a 2013-era cluster with a shared parallel
/// filesystem; DESIGN.md documents the substitution.
inline cluster::ClusterConfig paper_cluster() {
  cluster::ClusterConfig cfg;
  cfg.nodes = 32;
  cfg.cores_per_node = 8;
  cfg.node_io_bw = 300e6;
  cfg.shared_fs_bw = 2.4e9;
  cfg.irregular_efficiency = 0.82;
  cfg.rank_startup = 0.02;
  cfg.collective_hop = 50e-6;
  return cfg;
}

/// Paper dataset scales (§V): per-record statistics measured from our
/// calibration sample are scaled to these totals.
constexpr double kFig6SamBytes = 100.0 * (1ull << 30);   // 100 GB SAM
constexpr double kFig7BamBytes = 117.0 * (1ull << 30);   // 117 GB BAM
constexpr double kFig9SamBytes = 15.7 * (1ull << 30);    // 15.7 GB SAM
constexpr size_t kHistogramBins = 16'000'000;            // 16M bins/bp
constexpr int kFdrSimulations = 80;

/// Per-core slowdown of the paper's platform (2.6 GHz Opteron 8218, 2013
/// compilers) relative to this container, anchored on the paper's own
/// sequential measurement in Table I: SAM -> FASTQ over 37.54 GB took
/// 3214 s, i.e. ~12.5 MB/s of per-core conversion throughput. Calibrated
/// CPU costs are multiplied by this factor so the simulator's compute axis
/// matches the evaluated hardware while *relative* costs between code
/// paths (text parse vs BAMX decode, fused vs two-pass FDR, per-target
/// formatting) come from measurements of the real ngsx code.
inline double opteron_cpu_factor(const cluster::ConversionCosts& costs,
                                 double our_cpu_per_record) {
  const double paper_bytes_per_second = 37.54 * (1ull << 30) / 3214.0;
  const double paper_cpu_per_record =
      costs.sam_bytes_per_record / paper_bytes_per_second;
  double factor = paper_cpu_per_record / our_cpu_per_record;
  return factor > 1.0 ? factor : 1.0;
}

/// Anchor on a paper-stated sequential time for a kernel: returns the
/// factor mapping our measured total CPU seconds to the paper's.
inline double anchored_factor(double paper_seq_seconds,
                              double our_seq_seconds) {
  double factor = paper_seq_seconds / our_seq_seconds;
  return factor > 1.0 ? factor : 1.0;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_series(const std::string& label,
                         const std::vector<cluster::SpeedupPoint>& series) {
  std::printf("%-28s", label.c_str());
  for (const auto& p : series) {
    std::printf(" %8d", p.cores);
  }
  std::printf("\n%-28s", "  time (s)");
  for (const auto& p : series) {
    std::printf(" %8.2f", p.seconds);
  }
  std::printf("\n%-28s", "  speedup");
  for (const auto& p : series) {
    std::printf(" %8.2f", p.speedup);
  }
  std::printf("\n");
}

inline void note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::printf("  note: ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

}  // namespace ngsx::bench
