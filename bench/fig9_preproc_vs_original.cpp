// Figure 9 reproduction: preprocessing-optimized SAM format converter vs
// the original SAM format converter.
//
// Paper (§V-E): a 15.7 GB SAM dataset converted to BED, BEDGRAPH and FASTA
// with both converters (preprocessing cost excluded for the "_P" bars).
// Reported: (1) the preprocessing-optimized converter scales better
// (regular BAMX layout improves MPI-IO); (2) it is faster — at 128 cores
// the paper measures 16.64/15.10/18.54 s (original) vs 11.51/11.48/12.80 s
// (preprocessed), i.e. 30.8%/24.0%/31.0% improvements from avoiding
// textual parsing.
//
// Method: calibrate both input paths (SAM text parse vs BAMX decode) from
// real runs and replay the 15.7 GB-scale conversions.

#include <cstdio>

#include "bench_util.h"
#include "cluster/costmodel.h"
#include "core/convert.h"
#include "formats/bam.h"
#include "simdata/readsim.h"
#include "util/cli.h"
#include "util/tempdir.h"

using namespace ngsx;
using cluster::ConversionJob;
using cluster::IoPattern;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const uint64_t pairs = static_cast<uint64_t>(args.get_int("pairs", 15000));

  bench::print_header(
      "Figure 9: preprocessing-optimized vs original SAM converter");

  // Functional check: the conversion phase consumes a BAMXM shard
  // manifest (single-pass parallel preprocessing) and a monolithic BAMX
  // (two-pass sequential preprocessing) interchangeably.
  {
    TempDir tmp("fig9");
    auto genome = simdata::ReferenceGenome::simulate(
        simdata::mouse_like_references(1'000'000), 9);
    simdata::ReadSimConfig rcfg;
    rcfg.seed = 9;
    auto recs = simdata::simulate_alignments(genome, 2000, rcfg);
    const std::string bam_path = tmp.file("in.bam");
    {
      bam::BamFileWriter w(bam_path, genome.header());
      for (const auto& r : recs) {
        w.write(r);
      }
      w.close();
    }
    auto seq = core::preprocess_bam(bam_path, tmp.file("s.bamx"),
                                    tmp.file("s.baix"));
    core::PreprocessOptions popt;
    popt.threads = 4;
    core::preprocess_bam_parallel(bam_path, tmp.file("p.bamxm"),
                                  tmp.file("p.baix"), popt);
    core::ConvertOptions copt;
    copt.format = core::TargetFormat::kBed;
    copt.ranks = 4;
    auto from_bamx = core::convert_bamx(tmp.file("s.bamx"), tmp.file("s.baix"),
                                        tmp.subdir("out-bamx"), copt);
    auto from_manifest = core::convert_bamx(tmp.file("p.bamxm"),
                                            tmp.file("p.baix"),
                                            tmp.subdir("out-manifest"), copt);
    std::string a, b;
    for (const auto& path : from_bamx.outputs) {
      a += read_file(path);
    }
    for (const auto& path : from_manifest.outputs) {
      b += read_file(path);
    }
    std::printf("functional check: conversion from .bamx and .bamxm over "
                "%llu records %s\n",
                static_cast<unsigned long long>(seq.records),
                a == b && from_bamx.records_in == from_manifest.records_in
                    ? "agree"
                    : "DISAGREE");
  }

  auto costs = cluster::calibrate_conversion(pairs, /*seed=*/9);
  cluster::ClusterSim sim(bench::paper_cluster());

  const uint64_t records = static_cast<uint64_t>(
      bench::kFig9SamBytes / costs.sam_bytes_per_record);
  const double cpu_factor = bench::opteron_cpu_factor(
      costs,
      costs.sam_parse + costs.format_cpu.at(core::TargetFormat::kFastq));
  std::printf("scaled dataset: 15.7 GB SAM = %.1fM records"
              " (platform CPU factor %.1fx)\n",
              records / 1e6, cpu_factor);
  std::printf("measured CPU: SAM parse %.2f us/rec vs BAMX decode %.2f us/rec\n",
              costs.sam_parse * 1e6, costs.bamx_decode * 1e6);

  const std::vector<int> cores = {1, 2, 4, 8, 16, 32, 64, 128};
  struct At128 {
    double original;
    double preproc;
  };
  std::vector<std::pair<std::string, At128>> at128;

  for (auto format : {core::TargetFormat::kBed, core::TargetFormat::kBedgraph,
                      core::TargetFormat::kFasta}) {
    std::string name(core::target_format_name(format));

    ConversionJob original;
    original.records = records;
    original.input_bytes = bench::kFig9SamBytes;
    original.cpu_per_record =
        cpu_factor * (costs.sam_parse + costs.format_cpu.at(format));
    original.out_bytes_per_record = costs.out_bytes_per_record.at(format);
    original.read_pattern = IoPattern::kIrregular;

    ConversionJob preproc = original;
    preproc.input_bytes =
        static_cast<double>(records) * costs.bamx_bytes_per_record;
    preproc.cpu_per_record =
        cpu_factor * (costs.bamx_decode + costs.format_cpu.at(format));
    preproc.read_pattern = IoPattern::kRegular;

    auto orig_series = cluster::speedup_series(sim, cores, [&](int p) {
      return cluster::conversion_work(original, p);
    });
    auto pre_series = cluster::speedup_series(sim, cores, [&](int p) {
      return cluster::conversion_work(preproc, p);
    });
    bench::print_series("SAM -> " + name + " (original)", orig_series);
    bench::print_series("SAM -> " + name + " (_P)", pre_series);
    at128.push_back({name, {orig_series.back().seconds,
                            pre_series.back().seconds}});
  }

  std::printf("\n128-core conversion times (paper: BED 16.64->11.51 s,"
              " BEDGRAPH 15.10->11.48 s, FASTA 18.54->12.80 s):\n");
  for (const auto& [name, t] : at128) {
    std::printf("  %-9s original %7.2f s, preprocessed %7.2f s"
                " -> %.1f%% improvement (paper: %s)\n",
                name.c_str(), t.original, t.preproc,
                100.0 * (t.original - t.preproc) / t.original,
                name == "bed" ? "30.8%" : name == "bedgraph" ? "24.0%"
                                                             : "31.0%");
  }
  return 0;
}
