// Ablation: BAMXZ block compression (the paper's future-work item).
//
// Quantifies the trade the paper anticipated: block-compressing the padded
// BAMX stream recovers (more than) the padding amplification, at the cost
// of decompressing a block per random access. Sweeps block size and
// compression level on real generated data.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "formats/bamxz.h"
#include "simdata/readsim.h"
#include "util/cli.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace ngsx;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const uint64_t pairs = static_cast<uint64_t>(args.get_int("pairs", 20000));

  bench::print_header("Ablation: BAMXZ block compression vs raw BAMX");
  TempDir tmp("ablate-bamxz");
  auto genome = simdata::ReferenceGenome::simulate(
      simdata::mouse_like_references(2'000'000), 91);
  simdata::ReadSimConfig cfg;
  cfg.seed = 91;
  auto records = simdata::simulate_alignments(genome, pairs, cfg);
  bamx::BamxLayout layout;
  for (const auto& r : records) {
    layout.accommodate(r);
  }

  // Raw BAMX baseline.
  const std::string bamx_path = tmp.file("d.bamx");
  {
    bamx::BamxWriter w(bamx_path, genome.header(), layout);
    for (const auto& r : records) {
      w.write(r);
    }
    w.close();
  }
  const double raw_mb = file_size(bamx_path) / 1e6;
  double raw_scan;
  double raw_random;
  {
    bamx::BamxReader r(bamx_path);
    WallTimer t;
    std::vector<sam::AlignmentRecord> batch;
    for (uint64_t at = 0; at < r.num_records();) {
      uint64_t take = std::min<uint64_t>(4096, r.num_records() - at);
      batch.clear();
      r.read_range(at, at + take, batch);
      at += take;
    }
    raw_scan = t.seconds();
    sam::AlignmentRecord rec;
    WallTimer t2;
    for (uint64_t i = 0; i < 20000; ++i) {
      r.read((i * 2654435761ull) % r.num_records(), rec);
    }
    raw_random = t2.seconds() * 1e6 / 20000;
  }
  std::printf("raw BAMX: %.1f MB, full scan %.2f s, random access %.2f us\n",
              raw_mb, raw_scan, raw_random);

  std::printf("\n%8s %6s %10s %9s %12s %14s\n", "blk recs", "level",
              "size (MB)", "ratio", "scan (s)", "random (us)");
  for (uint32_t rpb : {64u, 1024u, 8192u}) {
    for (int level : {1, 6}) {
      std::string path = tmp.file("z" + std::to_string(rpb) + "-" +
                                  std::to_string(level) + ".bamxz");
      {
        bamxz::BamxzWriter w(path, genome.header(), layout, rpb, level);
        for (const auto& r : records) {
          w.write(r);
        }
        w.close();
      }
      bamxz::BamxzReader r(path);
      WallTimer t;
      std::vector<sam::AlignmentRecord> batch;
      r.read_range(0, r.num_records(), batch);
      double scan = t.seconds();
      sam::AlignmentRecord rec;
      WallTimer t2;
      const uint64_t probes = 5000;
      for (uint64_t i = 0; i < probes; ++i) {
        r.read((i * 2654435761ull) % r.num_records(), rec);
      }
      double random_us = t2.seconds() * 1e6 / probes;
      std::printf("%8u %6d %10.1f %8.2fx %12.2f %14.2f\n", rpb, level,
                  r.compressed_size() / 1e6,
                  raw_mb * 1e6 / r.compressed_size(), scan, random_us);
    }
  }
  std::printf("\ntakeaway: compression removes the padding amplification\n"
              "(BAMXZ beats even BAM's size on padded data) while random\n"
              "access costs one block inflate; small blocks favour random\n"
              "access, large blocks favour scans and ratio.\n");
  return 0;
}
