// Figure 11 reproduction: speedup of parallel NL-means processing.
//
// Paper (§V-G): denoising a 16M-bp histogram (25 bp bins), sigma=10, l=15,
// r in {20, 80, 320}; sequential times 10213 / 41010 / 163231 s. Reported
// shape: near-linear scaling to 128 cores, slightly better for larger r
// (the fixed replication overhead of the (r+l)-wide halo is amortized by
// the larger per-point compute).
//
// Method: run the real NL-means kernel to (a) verify parallel ==
// sequential and (b) measure per-point-per-op cost, then replay the 16M-
// point job. The halo exchange is charged as the paper describes: each
// rank ships 2(r+l) doubles to neighbours.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "cluster/costmodel.h"
#include "simdata/histsim.h"
#include "stats/nlmeans.h"
#include "util/cli.h"
#include "util/timer.h"

using namespace ngsx;
using cluster::IoPattern;
using cluster::Phase;
using cluster::RankWork;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const size_t sample = static_cast<size_t>(args.get_int("sample", 20000));

  bench::print_header("Figure 11: NL-means processing speedup");

  // Functional check on real data: parallel output equals sequential.
  simdata::HistSimConfig hcfg;
  hcfg.seed = 11;
  auto sample_hist = simdata::simulate_histogram(sample, hcfg);
  {
    stats::NlMeansParams params;  // r=20, l=15 defaults
    auto seq = stats::nlmeans(sample_hist, params);
    auto par = stats::nlmeans_parallel(sample_hist, params, 8);
    bool identical = seq == par;
    std::printf("functional check (%zu bins, 8 ranks): parallel output %s\n",
                sample, identical ? "bit-identical to sequential" : "DIFFERS");
  }

  auto costs = cluster::calibrate_stats(sample, /*b=*/8, /*seed=*/11);
  cluster::ClusterSim sim(bench::paper_cluster());

  const std::vector<int> cores = {1, 2, 4, 8, 16, 32, 64, 128};
  const int l = 15;
  // Anchor the compute axis on the paper's own r=20 sequential time
  // (10213 s for 16M bins); r=80/320 then follow from the measured
  // window-linear scaling of the real kernel.
  const double our_r20_seconds =
      costs.nlmeans_per_point_op * (2 * 20 + 1) * (2 * l + 1) *
      static_cast<double>(bench::kHistogramBins);
  const double cpu_factor = bench::anchored_factor(10213.0, our_r20_seconds);
  std::printf("platform CPU factor %.1fx (anchored on paper's 10213 s at"
              " r=20)\n", cpu_factor);
  double seq_seconds_r20 = 0;
  for (int r : {20, 80, 320}) {
    const double ops = static_cast<double>(2 * r + 1) * (2 * l + 1);
    const double total_cpu = cpu_factor * costs.nlmeans_per_point_op * ops *
                             static_cast<double>(bench::kHistogramBins);
    auto make_work = [&](int p) {
      std::vector<RankWork> work(static_cast<size_t>(p));
      const double bins_per_rank =
          static_cast<double>(bench::kHistogramBins) / p;
      const double halo_bytes = 2.0 * (r + l) * sizeof(double);
      for (auto& w : work) {
        w.phases = {
            // Initial data distribution (8 B per bin) + halo replication.
            Phase::read(bins_per_rank * sizeof(double) +
                            (p > 1 ? halo_bytes : 0.0),
                        IoPattern::kRegular),
            Phase::compute(total_cpu / p),
            Phase::write(bins_per_rank * sizeof(double),
                         IoPattern::kRegular),
        };
      }
      return work;
    };
    auto series = cluster::speedup_series(sim, cores, make_work);
    bench::print_series("NL-means r=" + std::to_string(r), series);
    if (r == 20) {
      seq_seconds_r20 = series[0].seconds;
    }
  }

  std::printf("\npaper shape: near-linear scaling; larger r scales slightly\n"
              "better (halo replication overhead relatively smaller).\n"
              "sequential cross-check: replayed r=20 %.0f s (paper 10213 s);\n"
              "window-linear scaling predicts r=80 %.0f s (paper 41010 s)\n"
              "and r=320 %.0f s (paper 163231 s).\n",
              seq_seconds_r20, seq_seconds_r20 * (161.0 / 41.0),
              seq_seconds_r20 * (641.0 / 41.0));
  return 0;
}
