// BAM preprocessing benchmark: the sequential two-pass preprocessor vs the
// single-pass parallel pipeline (framing -> parse+encode workers -> ordered
// commit -> parallel re-stride), plus an analytic model calibrated from the
// measured serial per-stage costs.
//
// Emits BENCH_preproc.json (path configurable with --json) with two
// sections:
//
//   "measured": real wall-clock seconds of preprocess_bam (two passes,
//     monolithic BAMX) and preprocess_bam_parallel (BAMXM manifest) on
//     this machine. On a single-core container the parallel pipeline
//     cannot beat the sequential passes; the numbers then chiefly bound
//     the orchestration overhead.
//   "modeled": wall time predicted from the measured serial per-stage
//     costs under P genuinely concurrent workers. The sequential baseline
//     pays decode + framing + parse twice (measure pass, encode pass) plus
//     one encode; the pipeline pays them once, with only record framing as
//     the sequential residue (the paper's §III-B observation):
//
//       T_seq(P)  = 2*(t_decode + t_frame + t_parse) + t_encode
//       T_pipe(P) = max(t_frame, (t_decode + t_parse + t_encode) / P)
//                   + t_restride / P
//
// Usage: bench_preproc [--pairs N] [--repeats R] [--json PATH]

#include <cstdio>
#include <string>
#include <vector>

#include "core/convert.h"
#include "formats/bam.h"
#include "formats/bgzf.h"
#include "obs/metrics.h"
#include "simdata/readsim.h"
#include "util/cli.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace ngsx;

namespace {

struct Measured {
  std::string preprocessor;
  int threads = 0;
  double seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const uint64_t pairs = static_cast<uint64_t>(args.get_int("pairs", 20000));
  const int repeats = static_cast<int>(args.get_int("repeats", 3));
  const std::string json_path = args.get("json", "BENCH_preproc.json");

  obs::enable_metrics();

  TempDir tmp("bench_preproc");
  const std::string bam_path = tmp.file("input.bam");
  std::printf("=== BAM preprocessing: two-pass sequential vs one-pass "
              "parallel ===\n");
  auto genome = simdata::ReferenceGenome::simulate(
      simdata::mouse_like_references(2'000'000), 99);
  std::vector<sam::AlignmentRecord> records;
  {
    simdata::ReadSimConfig cfg;
    cfg.seed = 99;
    records = simdata::simulate_alignments(genome, pairs, cfg);
    bam::BamFileWriter w(bam_path, genome.header());
    for (const auto& r : records) {
      w.write(r);
    }
    w.close();
  }
  const uint64_t bam_bytes = file_size(bam_path);
  std::printf("dataset: %llu records, %.1f MB BAM\n",
              static_cast<unsigned long long>(records.size()),
              bam_bytes / 1e6);

  // --------------------------------------------- serial per-stage costs
  // t_decode: BGZF inflate of the whole file, no record interpretation.
  double t_decode;
  {
    bgzf::Reader reader(bam_path);
    char buf[1 << 16];
    WallTimer timer;
    while (reader.read(buf, sizeof(buf)) > 0) {
    }
    t_decode = timer.seconds();
  }
  // t_frame: record framing on top of the decode — the sequential residue
  // of the pipeline. Measured as (decode + framing) - decode.
  std::vector<std::string> bodies;
  double t_frame;
  {
    bam::BamFileReader reader(bam_path, /*decode_threads=*/1);
    std::string body;
    WallTimer timer;
    while (reader.next_raw(body)) {
      bodies.push_back(body);
    }
    t_frame = std::max(0.0, timer.seconds() - t_decode);
  }
  // t_parse: BAM body -> AlignmentRecord for every record.
  double t_parse;
  bamx::BamxLayout layout;
  {
    sam::AlignmentRecord rec;
    WallTimer timer;
    for (const std::string& body : bodies) {
      bam::decode_record(body, rec);
      layout.accommodate(rec);
    }
    t_parse = timer.seconds();
  }
  // t_encode: AlignmentRecord -> fixed-stride BAMX bytes.
  double t_encode;
  std::string blob;
  {
    sam::AlignmentRecord rec;
    WallTimer timer;
    for (const std::string& body : bodies) {
      bam::decode_record(body, rec);
      bamx::encode_record(rec, layout, blob);
    }
    t_encode = std::max(0.0, timer.seconds() - t_parse);
  }
  // t_restride: section-wise copy of every encoded record into a fresh
  // buffer (what the final sharding pass costs per record).
  double t_restride;
  {
    const uint64_t stride = layout.stride();
    std::string out;
    WallTimer timer;
    for (uint64_t i = 0; i < bodies.size(); ++i) {
      out.clear();
      bamx::restride_record(
          std::string_view(blob).substr(i * stride, stride), layout, layout,
          out);
    }
    t_restride = timer.seconds();
  }
  std::printf("serial stage costs: decode %.3f s, frame %.3f s, parse %.3f "
              "s, encode %.3f s, restride %.3f s\n",
              t_decode, t_frame, t_parse, t_encode, t_restride);

  // ------------------------------------------------------------- measured
  std::vector<Measured> measured;
  auto record_best = [&](const std::string& name, int threads, auto run) {
    double best = 1e300;
    for (int r = 0; r < repeats; ++r) {
      best = std::min(best, run());
    }
    measured.push_back(Measured{name, threads, best});
    std::printf("  %-10s threads=%d  %8.3f s\n", name.c_str(), threads,
                best);
  };

  std::printf("measured (best of %d runs):\n", repeats);
  record_best("two-pass", 1, [&] {
    TempDir out("bench_preproc_seq");
    auto stats = core::preprocess_bam(bam_path, out.file("x.bamx"),
                                      out.file("x.baix"),
                                      /*decode_threads=*/1);
    return stats.seconds;
  });
  for (int threads : {1, 2, 4}) {
    record_best("one-pass", threads, [&] {
      TempDir out("bench_preproc_par");
      core::PreprocessOptions opt;
      opt.threads = threads;
      opt.decode_threads = threads;
      auto stats = core::preprocess_bam_parallel(
          bam_path, out.file("x.bamxm"), out.file("x.baix"), opt);
      return stats.seconds;
    });
  }

  // -------------------------------------------------------------- modeled
  const double t_seq = 2.0 * (t_decode + t_frame + t_parse) + t_encode;
  const std::vector<int> model_threads = {1, 2, 4, 8, 16};
  std::vector<double> modeled_s;
  std::printf("modeled (P concurrent workers, from serial stage costs; "
              "sequential baseline %.3f s):\n", t_seq);
  for (int p : model_threads) {
    double pipe = std::max(t_frame, (t_decode + t_parse + t_encode) / p) +
                  t_restride / p;
    modeled_s.push_back(pipe);
    std::printf("  P=%-2d %8.3f s (%.2fx over two-pass)\n", p, pipe,
                t_seq / pipe);
  }

  // ----------------------------------------------------------------- JSON
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"records\": %llu,\n",
               static_cast<unsigned long long>(records.size()));
  std::fprintf(f, "  \"bam_mb\": %.2f,\n", bam_bytes / 1e6);
  std::fprintf(f, "  \"decode_s\": %.4f,\n", t_decode);
  std::fprintf(f, "  \"frame_s\": %.4f,\n", t_frame);
  std::fprintf(f, "  \"parse_s\": %.4f,\n", t_parse);
  std::fprintf(f, "  \"encode_s\": %.4f,\n", t_encode);
  std::fprintf(f, "  \"restride_s\": %.4f,\n", t_restride);
  std::fprintf(f, "  \"sequential_modeled_s\": %.4f,\n", t_seq);
  std::fprintf(f, "  \"measured\": [\n");
  for (size_t i = 0; i < measured.size(); ++i) {
    const Measured& m = measured[i];
    std::fprintf(f,
                 "    {\"preprocessor\": \"%s\", \"threads\": %d, "
                 "\"seconds\": %.4f}%s\n",
                 m.preprocessor.c_str(), m.threads, m.seconds,
                 i + 1 < measured.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"modeled\": [\n");
  for (size_t i = 0; i < model_threads.size(); ++i) {
    std::fprintf(f,
                 "    {\"threads\": %d, \"seconds\": %.4f, "
                 "\"speedup\": %.2f}%s\n",
                 model_threads[i], modeled_s[i], t_seq / modeled_s[i],
                 i + 1 < model_threads.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Full ngsx.metrics.v1 snapshot: the convert.preprocess.* spans and
  // counters for every run above (docs/OBSERVABILITY.md).
  std::fprintf(f, "  \"obs\": %s\n}\n", obs::metrics_json().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
