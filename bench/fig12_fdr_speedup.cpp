// Figure 12 reproduction: speedup of parallel FDR computation.
//
// Paper (§V-H): 1 histogram + 80 simulation datasets, 16M bins each, up to
// 256 cores. Sequential version averages 1164 s; reported speedups are
// 8.30 / 16.60 / 33.15 / 66.16 / 132.14 / 263.94 at 8..256 cores — mildly
// *superlinear*, which the paper attributes to the extra gain from the
// summation permutation in Algorithm 2 (the parallel version fuses the
// numerator/denominator sweeps; the sequential baseline doesn't).
//
// Method: verify all FDR variants agree on real data; measure the fused
// and two-pass per-bin costs; replay with the paper's convention —
// sequential baseline = two-pass sweep, parallel = fused Algorithm 2 +
// one gather — which reproduces the superlinearity from real measured
// cost ratios.

#include <cstdio>

#include "bench_util.h"
#include "cluster/costmodel.h"
#include "simdata/histsim.h"
#include "stats/fdr.h"
#include "util/cli.h"

using namespace ngsx;
using cluster::IoPattern;
using cluster::Phase;
using cluster::RankWork;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const size_t sample = static_cast<size_t>(args.get_int("sample", 3000));

  bench::print_header("Figure 12: FDR computation speedup");

  // Functional check: Algorithm 2 equals the reference on real data.
  {
    simdata::HistSimConfig hcfg;
    hcfg.seed = 12;
    auto hist = simdata::simulate_histogram(1000, hcfg);
    auto sims =
        simdata::simulate_null_batch(1000, 16, hcfg.background_rate, 12);
    auto ref = stats::fdr_reference(hist, sims, 2);
    auto par = stats::fdr_parallel(hist, sims, 2, 8);
    std::printf("functional check: FDR(p_t=2) reference %.6f, Algorithm 2 "
                "(8 ranks) %.6f -> %s\n",
                ref.fdr, par.fdr, ref.fdr == par.fdr ? "equal" : "DIFFER");
  }

  auto costs =
      cluster::calibrate_stats(sample, bench::kFdrSimulations, /*seed=*/12);
  cluster::ClusterSim sim(bench::paper_cluster());

  const double bins = static_cast<double>(bench::kHistogramBins);
  // Anchor the compute axis on the paper's sequential 1164 s (two-pass).
  const double cpu_factor =
      bench::anchored_factor(1164.0, costs.fdr_two_pass_per_bin * bins);
  const double seq_seconds = cpu_factor * costs.fdr_two_pass_per_bin * bins;

  // Timing covers the computation itself, not the initial loading of the
  // 81 datasets: the paper's superlinear speedups (263.94x at 256) are
  // only possible if the input is already resident, so we match that
  // convention. Algorithm 2's single gather is charged per run.
  auto make_parallel = [&](int p) {
    std::vector<RankWork> work(static_cast<size_t>(p));
    for (auto& w : work) {
      w.phases = {
          Phase::compute(cpu_factor * costs.fdr_fused_per_bin * bins / p),
      };
    }
    return work;
  };

  std::printf("measured per-bin cost (B=%d): two-pass %.2f us, fused %.2f us"
              " (fusion saves %.1f%%)\n",
              bench::kFdrSimulations, costs.fdr_two_pass_per_bin * 1e6,
              costs.fdr_fused_per_bin * 1e6,
              100.0 * (costs.fdr_two_pass_per_bin - costs.fdr_fused_per_bin) /
                  costs.fdr_two_pass_per_bin);
  std::printf("sequential baseline (two-pass, as the paper's 1164 s): "
              "%.0f s at this container's per-core speed\n", seq_seconds);

  const std::vector<int> cores = {8, 16, 32, 64, 128, 256};
  const double paper[] = {8.30, 16.60, 33.15, 66.16, 132.14, 263.94};
  std::printf("\n%8s %12s %12s %12s\n", "cores", "time (s)", "speedup",
              "paper");
  for (size_t i = 0; i < cores.size(); ++i) {
    double t = sim.run(make_parallel(cores[i])).makespan;
    std::printf("%8d %12.2f %12.2f %12.2f\n", cores[i], t, seq_seconds / t,
                paper[i]);
  }
  std::printf("\npaper shape: ~linear-to-superlinear speedup; the extra\n"
              "factor comes from the summation permutation (fused sweep)\n"
              "that the sequential baseline lacks.\n");
  return 0;
}
