// Micro-benchmarks (google-benchmark) for the format substrate's hot
// loops: BGZF block codec, SAM text codec, BAM record codec, BAMX record
// codec, and the target-format serializers. These are the per-record costs
// the figure harnesses calibrate; tracking them here catches regressions.

#include <benchmark/benchmark.h>

#include "formats/bam.h"
#include "formats/bamx.h"
#include "formats/bgzf.h"
#include "formats/textfmt.h"
#include "simdata/readsim.h"
#include "util/rng.h"

namespace {

using namespace ngsx;
using sam::AlignmentRecord;

/// Shared fixture data (built once).
struct Fixture {
  simdata::ReferenceGenome genome = simdata::ReferenceGenome::simulate(
      simdata::mouse_like_references(500000), 123);
  std::vector<AlignmentRecord> records;
  std::vector<std::string> sam_lines;
  std::vector<std::string> bam_bodies;
  bamx::BamxLayout layout;
  std::vector<std::string> bamx_bodies;

  Fixture() {
    simdata::ReadSimConfig cfg;
    cfg.seed = 123;
    records = simdata::simulate_alignments(genome, 2000, cfg);
    for (const auto& rec : records) {
      std::string line;
      sam::format_record(rec, genome.header(), line);
      sam_lines.push_back(std::move(line));
      std::string bam;
      bam::encode_record(rec, bam);
      bam_bodies.push_back(bam.substr(4));
      layout.accommodate(rec);
    }
    for (const auto& rec : records) {
      std::string body;
      bamx::encode_record(rec, layout, body);
      bamx_bodies.push_back(std::move(body));
    }
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_SamParse(benchmark::State& state) {
  Fixture& f = fixture();
  AlignmentRecord rec;
  size_t i = 0;
  for (auto _ : state) {
    sam::parse_record(f.sam_lines[i % f.sam_lines.size()],
                      f.genome.header(), rec);
    benchmark::DoNotOptimize(rec);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SamParse);

void BM_SamFormat(benchmark::State& state) {
  Fixture& f = fixture();
  std::string out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    sam::format_record(f.records[i % f.records.size()], f.genome.header(),
                       out);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SamFormat);

void BM_BamEncode(benchmark::State& state) {
  Fixture& f = fixture();
  std::string out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    bam::encode_record(f.records[i % f.records.size()], out);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BamEncode);

void BM_BamDecode(benchmark::State& state) {
  Fixture& f = fixture();
  AlignmentRecord rec;
  size_t i = 0;
  for (auto _ : state) {
    bam::decode_record(f.bam_bodies[i % f.bam_bodies.size()], rec);
    benchmark::DoNotOptimize(rec);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BamDecode);

void BM_BamxEncode(benchmark::State& state) {
  Fixture& f = fixture();
  std::string out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    bamx::encode_record(f.records[i % f.records.size()], f.layout, out);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BamxEncode);

void BM_BamxDecode(benchmark::State& state) {
  Fixture& f = fixture();
  AlignmentRecord rec;
  size_t i = 0;
  for (auto _ : state) {
    bamx::decode_record(f.bamx_bodies[i % f.bamx_bodies.size()], f.layout,
                        rec);
    benchmark::DoNotOptimize(rec);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BamxDecode);

void BM_BgzfCompress(benchmark::State& state) {
  Rng rng(9);
  std::string input(static_cast<size_t>(state.range(0)), '\0');
  for (auto& c : input) {
    c = "ACGT"[rng.below(4)];
  }
  std::string out;
  for (auto _ : state) {
    out.clear();
    bgzf::compress_block(input, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BgzfCompress)->Arg(4096)->Arg(65000);

void BM_BgzfCompressReused(benchmark::State& state) {
  // Same work as BM_BgzfCompress but through a persistent Deflater: the
  // per-block deflateInit2 is replaced by deflateReset, the steady-state
  // cost every BGZF writer (sequential and parallel worker) now pays.
  Rng rng(9);
  std::string input(static_cast<size_t>(state.range(0)), '\0');
  for (auto& c : input) {
    c = "ACGT"[rng.below(4)];
  }
  bgzf::Deflater deflater;
  std::string out;
  for (auto _ : state) {
    out.clear();
    deflater.compress(input, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BgzfCompressReused)->Arg(4096)->Arg(65000);

void BM_BgzfDecompress(benchmark::State& state) {
  Rng rng(9);
  std::string input(static_cast<size_t>(state.range(0)), '\0');
  for (auto& c : input) {
    c = "ACGT"[rng.below(4)];
  }
  std::string block;
  bgzf::compress_block(input, block);
  std::string out;
  for (auto _ : state) {
    out.clear();
    bgzf::decompress_block(block, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BgzfDecompress)->Arg(4096)->Arg(65000);

void BM_BgzfDecompressReused(benchmark::State& state) {
  // Persistent Inflater (inflateReset per block) vs the throwaway-stream
  // free function above; this is the per-block cost inside both BGZF
  // readers.
  Rng rng(9);
  std::string input(static_cast<size_t>(state.range(0)), '\0');
  for (auto& c : input) {
    c = "ACGT"[rng.below(4)];
  }
  std::string block;
  bgzf::compress_block(input, block);
  bgzf::Inflater inflater;
  std::string out;
  for (auto _ : state) {
    out.clear();
    inflater.decompress(block, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BgzfDecompressReused)->Arg(4096)->Arg(65000);

template <bool (*Fn)(const AlignmentRecord&, const sam::SamHeader&,
                     std::string&)>
void BM_TextTarget(benchmark::State& state) {
  Fixture& f = fixture();
  std::string out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    Fn(f.records[i % f.records.size()], f.genome.header(), out);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TextTarget<&textfmt::append_bed>)->Name("BM_FormatBed");
BENCHMARK(BM_TextTarget<&textfmt::append_bedgraph>)->Name("BM_FormatBedgraph");
BENCHMARK(BM_TextTarget<&textfmt::append_fasta>)->Name("BM_FormatFasta");
BENCHMARK(BM_TextTarget<&textfmt::append_fastq>)->Name("BM_FormatFastq");
BENCHMARK(BM_TextTarget<&textfmt::append_json>)->Name("BM_FormatJson");
BENCHMARK(BM_TextTarget<&textfmt::append_yaml>)->Name("BM_FormatYaml");

void BM_Reg2Bin(benchmark::State& state) {
  int32_t pos = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bam::reg2bin(pos, pos + 90));
    pos = (pos + 9973) & ((1 << 28) - 1);
  }
}
BENCHMARK(BM_Reg2Bin);

}  // namespace

BENCHMARK_MAIN();
