// Micro-benchmarks (google-benchmark) for the format substrate's hot
// loops: BGZF block codec, SAM text codec, BAM record codec, BAMX record
// codec, and the target-format serializers. These are the per-record costs
// the figure harnesses calibrate; tracking them here catches regressions.

#include <benchmark/benchmark.h>

#include "formats/bam.h"
#include "formats/bamx.h"
#include "formats/bgzf.h"
#include "formats/seqcodec.h"
#include "formats/textfmt.h"
#include "simdata/readsim.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/strutil.h"

namespace {

using namespace ngsx;
using sam::AlignmentRecord;

/// Shared fixture data (built once).
struct Fixture {
  simdata::ReferenceGenome genome = simdata::ReferenceGenome::simulate(
      simdata::mouse_like_references(500000), 123);
  std::vector<AlignmentRecord> records;
  std::vector<std::string> sam_lines;
  std::vector<std::string> bam_bodies;
  bamx::BamxLayout layout;
  std::vector<std::string> bamx_bodies;

  Fixture() {
    simdata::ReadSimConfig cfg;
    cfg.seed = 123;
    records = simdata::simulate_alignments(genome, 2000, cfg);
    for (const auto& rec : records) {
      std::string line;
      sam::format_record(rec, genome.header(), line);
      sam_lines.push_back(std::move(line));
      std::string bam;
      bam::encode_record(rec, bam);
      bam_bodies.push_back(bam.substr(4));
      layout.accommodate(rec);
    }
    for (const auto& rec : records) {
      std::string body;
      bamx::encode_record(rec, layout, body);
      bamx_bodies.push_back(std::move(body));
    }
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_SamParse(benchmark::State& state) {
  Fixture& f = fixture();
  AlignmentRecord rec;
  size_t i = 0;
  for (auto _ : state) {
    sam::parse_record(f.sam_lines[i % f.sam_lines.size()],
                      f.genome.header(), rec);
    benchmark::DoNotOptimize(rec);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SamParse);

void BM_SamFormat(benchmark::State& state) {
  Fixture& f = fixture();
  std::string out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    sam::format_record(f.records[i % f.records.size()], f.genome.header(),
                       out);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SamFormat);

void BM_BamEncode(benchmark::State& state) {
  Fixture& f = fixture();
  std::string out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    bam::encode_record(f.records[i % f.records.size()], out);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BamEncode);

void BM_BamDecode(benchmark::State& state) {
  Fixture& f = fixture();
  AlignmentRecord rec;
  size_t i = 0;
  for (auto _ : state) {
    bam::decode_record(f.bam_bodies[i % f.bam_bodies.size()], rec);
    benchmark::DoNotOptimize(rec);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BamDecode);

void BM_BamxEncode(benchmark::State& state) {
  Fixture& f = fixture();
  std::string out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    bamx::encode_record(f.records[i % f.records.size()], f.layout, out);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BamxEncode);

void BM_BamxDecode(benchmark::State& state) {
  Fixture& f = fixture();
  AlignmentRecord rec;
  size_t i = 0;
  for (auto _ : state) {
    bamx::decode_record(f.bamx_bodies[i % f.bamx_bodies.size()], f.layout,
                        rec);
    benchmark::DoNotOptimize(rec);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BamxDecode);

void BM_BgzfCompress(benchmark::State& state) {
  Rng rng(9);
  std::string input(static_cast<size_t>(state.range(0)), '\0');
  for (auto& c : input) {
    c = "ACGT"[rng.below(4)];
  }
  std::string out;
  for (auto _ : state) {
    out.clear();
    bgzf::compress_block(input, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BgzfCompress)->Arg(4096)->Arg(65000);

void BM_BgzfCompressReused(benchmark::State& state) {
  // Same work as BM_BgzfCompress but through a persistent Deflater: the
  // per-block deflateInit2 is replaced by deflateReset, the steady-state
  // cost every BGZF writer (sequential and parallel worker) now pays.
  Rng rng(9);
  std::string input(static_cast<size_t>(state.range(0)), '\0');
  for (auto& c : input) {
    c = "ACGT"[rng.below(4)];
  }
  bgzf::Deflater deflater;
  std::string out;
  for (auto _ : state) {
    out.clear();
    deflater.compress(input, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BgzfCompressReused)->Arg(4096)->Arg(65000);

void BM_BgzfDecompress(benchmark::State& state) {
  Rng rng(9);
  std::string input(static_cast<size_t>(state.range(0)), '\0');
  for (auto& c : input) {
    c = "ACGT"[rng.below(4)];
  }
  std::string block;
  bgzf::compress_block(input, block);
  std::string out;
  for (auto _ : state) {
    out.clear();
    bgzf::decompress_block(block, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BgzfDecompress)->Arg(4096)->Arg(65000);

void BM_BgzfDecompressReused(benchmark::State& state) {
  // Persistent Inflater (inflateReset per block) vs the throwaway-stream
  // free function above; this is the per-block cost inside both BGZF
  // readers.
  Rng rng(9);
  std::string input(static_cast<size_t>(state.range(0)), '\0');
  for (auto& c : input) {
    c = "ACGT"[rng.below(4)];
  }
  std::string block;
  bgzf::compress_block(input, block);
  bgzf::Inflater inflater;
  std::string out;
  for (auto _ : state) {
    out.clear();
    inflater.decompress(block, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_BgzfDecompressReused)->Arg(4096)->Arg(65000);

template <bool (*Fn)(const AlignmentRecord&, const sam::SamHeader&,
                     std::string&)>
void BM_TextTarget(benchmark::State& state) {
  Fixture& f = fixture();
  std::string out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    Fn(f.records[i % f.records.size()], f.genome.header(), out);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TextTarget<&textfmt::append_bed>)->Name("BM_FormatBed");
BENCHMARK(BM_TextTarget<&textfmt::append_bedgraph>)->Name("BM_FormatBedgraph");
BENCHMARK(BM_TextTarget<&textfmt::append_fasta>)->Name("BM_FormatFasta");
BENCHMARK(BM_TextTarget<&textfmt::append_fastq>)->Name("BM_FormatFastq");
BENCHMARK(BM_TextTarget<&textfmt::append_json>)->Name("BM_FormatJson");
BENCHMARK(BM_TextTarget<&textfmt::append_yaml>)->Name("BM_FormatYaml");

// --------------------------------------------------- byte-level kernels
//
// Scalar-vs-dispatched GB/s for the util/simd.h and seqcodec kernels;
// bench_codec emits the same comparison as BENCH_codec.json, these rows
// track it run-to-run under google-benchmark.

std::string& sam_text_blob() {
  static std::string text = [] {
    Fixture& f = fixture();
    std::string t;
    for (const auto& line : f.sam_lines) {
      t += line;
      t += '\n';
    }
    return t;
  }();
  return text;
}

template <size_t (*FindByte)(const char*, size_t, char)>
void BM_Tokenize(benchmark::State& state) {
  const std::string& text = sam_text_blob();
  std::vector<std::string_view> fields;
  for (auto _ : state) {
    size_t pos = 0;
    size_t sink = 0;
    while (pos < text.size()) {
      size_t nl =
          pos + FindByte(text.data() + pos, text.size() - pos, '\n');
      std::string_view line(text.data() + pos, nl - pos);
      pos = nl == text.size() ? text.size() : nl + 1;
      strutil::split(line, '\t', fields);
      sink += fields.size();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_Tokenize<&simd::find_byte_scalar>)->Name("BM_TokenizeScalar");
BENCHMARK(BM_Tokenize<&simd::find_byte>)->Name("BM_TokenizeSimd");

template <void (*Unpack)(const char*, size_t, std::string&)>
void BM_SeqUnpack(benchmark::State& state) {
  const size_t l_seq = 1 << 20;
  Rng rng(13);
  std::string packed((l_seq + 1) / 2, '\0');
  for (auto& c : packed) {
    c = static_cast<char>(rng.below(256));
  }
  std::string out;
  for (auto _ : state) {
    Unpack(packed.data(), l_seq, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(l_seq));
}
BENCHMARK(BM_SeqUnpack<&seqcodec::unpack_seq_scalar>)
    ->Name("BM_SeqUnpackScalar");
BENCHMARK(BM_SeqUnpack<&seqcodec::unpack_seq>)->Name("BM_SeqUnpackSimd");

void BM_SeqPack(benchmark::State& state) {
  const size_t l_seq = 1 << 20;
  Rng rng(14);
  std::string seq(l_seq, '\0');
  for (auto& c : seq) {
    c = seqcodec::kNibbles[rng.below(16)];
  }
  std::string packed((l_seq + 1) / 2, '\0');
  for (auto _ : state) {
    seqcodec::pack_seq_into(seq, packed.data());
    benchmark::DoNotOptimize(packed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(l_seq));
}
BENCHMARK(BM_SeqPack);

template <uint32_t (*Crc)(uint32_t, const void*, size_t)>
void BM_Crc32(benchmark::State& state) {
  Rng rng(15);
  std::string buf(static_cast<size_t>(state.range(0)), '\0');
  for (auto& c : buf) {
    c = static_cast<char>(rng.below(256));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc(0, buf.data(), buf.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32<&simd::crc32_ieee_scalar>)
    ->Name("BM_Crc32Scalar")
    ->Arg(65000);
BENCHMARK(BM_Crc32<&simd::crc32_ieee>)->Name("BM_Crc32Simd")->Arg(65000);

void BM_Reg2Bin(benchmark::State& state) {
  int32_t pos = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bam::reg2bin(pos, pos + 90));
    pos = (pos + 9973) & ((1 << 28) - 1);
  }
}
BENCHMARK(BM_Reg2Bin);

}  // namespace

BENCHMARK_MAIN();
