// Ablation: the BAMX fixed-stride padded layout (§III-B).
//
// Quantifies both sides of the paper's central trade-off:
//   + decode speed: fixed-offset field access vs SAM text parsing vs
//     BAM inflate+decode vs BamTools-style decode+adapt (real, measured);
//   - space: padding amplifies the file vs BAM (and vs SAM), the cost the
//     paper proposes to attack with compression in future work.

#include <cstdio>

#include "baseline/picardlike.h"
#include "bench_util.h"
#include "core/convert.h"
#include "formats/bam.h"
#include "simdata/readsim.h"
#include "util/cli.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace ngsx;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const uint64_t pairs = static_cast<uint64_t>(args.get_int("pairs", 25000));

  bench::print_header("Ablation: BAMX layout regularity");
  TempDir tmp("ablate-bamx");
  auto genome = simdata::ReferenceGenome::simulate(
      simdata::mouse_like_references(2'000'000), 77);
  simdata::ReadSimConfig cfg;
  cfg.seed = 77;
  const std::string sam_path = tmp.file("d.sam");
  const std::string bam_path = tmp.file("d.bam");
  simdata::write_sam_dataset(sam_path, genome, pairs, cfg);
  simdata::write_bam_dataset(bam_path, genome, pairs, cfg);
  auto pre =
      core::preprocess_bam(bam_path, tmp.file("d.bamx"), tmp.file("d.baix"));
  const double n = static_cast<double>(pre.records);

  // Space amplification.
  uint64_t sam_size = file_size(sam_path);
  uint64_t bam_size = file_size(bam_path);
  uint64_t bamx_size = file_size(tmp.file("d.bamx"));
  std::printf("space: SAM %.1f MB, BAM %.1f MB, BAMX %.1f MB "
              "(padding amplification vs BAM: %.2fx, vs SAM: %.2fx)\n",
              sam_size / 1e6, bam_size / 1e6, bamx_size / 1e6,
              static_cast<double>(bamx_size) / bam_size,
              static_cast<double>(bamx_size) / sam_size);

  // Decode throughput of each access path (records/s, full scan).
  {
    WallTimer t;
    sam::SamFileReader reader(sam_path);
    sam::AlignmentRecord rec;
    uint64_t count = 0;
    while (reader.next(rec)) {
      ++count;
    }
    std::printf("scan SAM text parse:        %8.2f s (%6.0f krec/s)\n",
                t.seconds(), count / t.seconds() / 1e3);
  }
  {
    WallTimer t;
    bam::BamFileReader reader(bam_path);
    sam::AlignmentRecord rec;
    uint64_t count = 0;
    while (reader.next(rec)) {
      ++count;
    }
    std::printf("scan BAM native decode:     %8.2f s (%6.0f krec/s)\n",
                t.seconds(), count / t.seconds() / 1e3);
  }
  {
    WallTimer t;
    baseline::BamToolsStyleReader reader(bam_path);
    baseline::BamToolsAlignment a;
    uint64_t count = 0;
    while (reader.GetNextAlignment(a)) {
      sam::AlignmentRecord rec = baseline::adapt(a, reader.header());
      ++count;
    }
    std::printf("scan BamTools-style + adapt:%8.2f s (%6.0f krec/s)\n",
                t.seconds(), count / t.seconds() / 1e3);
  }
  {
    WallTimer t;
    bamx::BamxReader reader(tmp.file("d.bamx"));
    std::vector<sam::AlignmentRecord> batch;
    for (uint64_t at = 0; at < reader.num_records();) {
      uint64_t take = std::min<uint64_t>(4096, reader.num_records() - at);
      batch.clear();
      reader.read_range(at, at + take, batch);
      at += take;
    }
    std::printf("scan BAMX fixed-stride:     %8.2f s (%6.0f krec/s)\n",
                t.seconds(), n / t.seconds() / 1e3);
  }

  // Random access: only BAMX supports it without an index walk.
  {
    bamx::BamxReader reader(tmp.file("d.bamx"));
    sam::AlignmentRecord rec;
    WallTimer t;
    const uint64_t probes = 20000;
    uint64_t state = 88172645463325252ull;
    for (uint64_t i = 0; i < probes; ++i) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      reader.read(state % reader.num_records(), rec);
    }
    std::printf("BAMX random access:         %8.2f us/record\n",
                t.seconds() * 1e6 / probes);
  }
  return 0;
}
